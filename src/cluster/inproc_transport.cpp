#include "cluster/inproc_transport.h"

#include <chrono>
#include <cstring>
#include <exception>
#include <optional>
#include <thread>

#include "util/str.h"
#include "util/timer.h"

namespace tinge::cluster {

namespace {

/// steady_clock deadline for a positive timeout; unused when unarmed.
std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace

void InProcessTransport::send(int dest, const void* data, std::size_t bytes,
                              int tag) {
  TINGE_EXPECTS(dest >= 0 && dest < size());
  InProcessCluster::Message message;
  message.src = rank_;
  message.tag = tag;
  message.payload.resize(bytes);
  if (bytes > 0) std::memcpy(message.payload.data(), data, bytes);
  hub_->deliver(dest, std::move(message));
  std::lock_guard<std::mutex> lock(traffic_mutex_);
  PeerTraffic& peer = peer_traffic_[static_cast<std::size_t>(dest)];
  peer.bytes_sent += bytes;
  ++peer.messages_sent;
}

std::vector<std::byte> InProcessTransport::recv(int src, int tag) {
  return recv(src, tag, hub_->default_recv_timeout_);
}

std::vector<std::byte> InProcessTransport::recv(int src, int tag,
                                                double timeout_seconds) {
  TINGE_EXPECTS(src >= 0 && src < size());
  std::vector<std::byte> payload =
      hub_->wait_for(rank_, src, tag, timeout_seconds);
  std::lock_guard<std::mutex> lock(traffic_mutex_);
  PeerTraffic& peer = peer_traffic_[static_cast<std::size_t>(src)];
  peer.bytes_received += payload.size();
  ++peer.messages_received;
  return payload;
}

std::optional<std::vector<std::byte>> InProcessTransport::try_recv(int src,
                                                                   int tag) {
  TINGE_EXPECTS(src >= 0 && src < size());
  std::optional<std::vector<std::byte>> payload =
      hub_->try_take(rank_, src, tag);
  if (payload) {
    std::lock_guard<std::mutex> lock(traffic_mutex_);
    PeerTraffic& peer = peer_traffic_[static_cast<std::size_t>(src)];
    peer.bytes_received += payload->size();
    ++peer.messages_received;
  }
  return payload;
}

InProcessCluster::InProcessCluster(int size, const TransportOptions& options)
    : size_(size),
      default_recv_timeout_(options.recv_timeout_seconds),
      rank_done_(static_cast<std::size_t>(size)) {
  TINGE_EXPECTS(size >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void InProcessCluster::deliver(int dest, Message message) {
  bytes_transferred_.fetch_add(message.payload.size(),
                               std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

void InProcessCluster::mark_rank_done(int rank) {
  rank_done_[static_cast<std::size_t>(rank)].store(true,
                                                   std::memory_order_release);
  // Notify while holding each waiter's mutex: a waiter that checked the
  // flag just before the store cannot slip into wait() and miss the wake.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
  std::lock_guard<std::mutex> lock(barrier_mutex_);
  barrier_cv_.notify_all();
}

int InProcessCluster::first_done_rank() const {
  for (int r = 0; r < size_; ++r) {
    if (rank_done_[static_cast<std::size_t>(r)].load(
            std::memory_order_acquire))
      return r;
  }
  return -1;
}

std::vector<std::byte> InProcessCluster::wait_for(int rank, int src, int tag,
                                                  double timeout_seconds) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const bool armed = timeout_seconds > 0.0;
  const auto deadline = deadline_after(armed ? timeout_seconds : 0.0);
  std::unique_lock<std::mutex> lock(box.mutex);
  // Match by (src, tag), FIFO within a match: interleaved tags from the
  // same source are skipped over and stay queued for their own recv.
  const auto take_match = [&]() -> std::optional<std::vector<std::byte>> {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        std::vector<std::byte> payload = std::move(it->payload);
        box.messages.erase(it);
        return payload;
      }
    }
    return std::nullopt;
  };
  while (true) {
    if (auto payload = take_match()) return *std::move(payload);
    // Match first, then liveness: a finished rank's already-queued messages
    // must still be receivable; only an *empty* match from a done rank can
    // never complete.
    if (rank_done_[static_cast<std::size_t>(src)].load(
            std::memory_order_acquire)) {
      throw PeerFailureError(
          strprintf("inproc transport: rank %d finished with no message "
                    "matching tag %d queued for rank %d",
                    src, tag, rank),
          rank, src);
    }
    if (!armed) {
      box.cv.wait(lock);
      continue;
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (auto payload = take_match()) return *std::move(payload);
      throw TimeoutError(
          strprintf("inproc transport: rank %d timed out after %.1fs waiting "
                    "for tag %d from rank %d (peer alive but silent)",
                    rank, timeout_seconds, tag, src),
          rank, src);
    }
  }
}

std::optional<std::vector<std::byte>> InProcessCluster::try_take(int rank,
                                                                 int src,
                                                                 int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      std::vector<std::byte> payload = std::move(it->payload);
      box.messages.erase(it);
      return payload;
    }
  }
  // Match first, then liveness — same order as wait_for: a finished rank's
  // already-queued messages drain normally; only once they are gone does
  // the probe report the peer as failed.
  if (rank_done_[static_cast<std::size_t>(src)].load(
          std::memory_order_acquire)) {
    throw PeerFailureError(
        strprintf("inproc transport: rank %d finished with no message "
                  "matching tag %d queued for rank %d",
                  src, tag, rank),
        rank, src);
  }
  return std::nullopt;
}

void InProcessCluster::barrier_wait(int rank) {
  const bool armed = default_recv_timeout_ > 0.0;
  const auto deadline = deadline_after(armed ? default_recv_timeout_ : 0.0);
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  while (barrier_generation_ == my_generation) {
    // A rank whose body already returned can never arrive at this pending
    // barrier, so waiting out the full deadline would just delay the same
    // verdict. (A rank blocked *inside* the barrier is by definition not
    // done, so this cannot misfire on a slow arrival.)
    const int done = first_done_rank();
    if (done >= 0) {
      --barrier_arrived_;
      throw PeerFailureError(
          strprintf("inproc transport: rank %d waited at a barrier that "
                    "rank %d exited without reaching",
                    rank, done),
          rank, done);
    }
    if (!armed) {
      barrier_cv_.wait(lock);
      continue;
    }
    if (barrier_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (barrier_generation_ != my_generation) return;
      --barrier_arrived_;
      throw TimeoutError(
          strprintf("inproc transport: rank %d timed out after %.1fs at a "
                    "barrier (%d of %d ranks arrived)",
                    rank, default_recv_timeout_, barrier_arrived_ + 1, size_),
          rank, -1);
    }
  }
}

void InProcessCluster::run(const std::function<void(Comm&)>& body) {
  // Reset the failure-detection state from any previous (possibly failed)
  // run: fresh done-roster, empty barrier rendezvous.
  for (auto& done : rank_done_) done.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_arrived_ = 0;
    ++barrier_generation_;
  }

  std::vector<std::unique_ptr<InProcessTransport>> endpoints;
  endpoints.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r)
    endpoints.push_back(std::make_unique<InProcessTransport>(*this, r));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::mutex error_mutex;
  std::exception_ptr first_error;
  // Byte/message accounting is kept on the cluster's own atomics in the hot
  // path; this SPMD execution publishes its delta to the registry on exit.
  const std::uint64_t bytes_before = bytes_transferred();
  const std::uint64_t messages_before = messages_sent();
  const Stopwatch watch;
  for (int r = 0; r < size_; ++r) {
    InProcessTransport& endpoint = *endpoints[static_cast<std::size_t>(r)];
    threads.emplace_back(
        [this, r, &endpoint, &body, &error_mutex, &first_error] {
          Comm comm(endpoint);
          try {
            body(comm);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          // Flip the done-roster on success *and* failure: survivors blocked
          // on this rank must fail fast either way.
          mark_rank_done(r);
        });
  }
  for (auto& thread : threads) thread.join();

  last_rank_traffic_.assign(static_cast<std::size_t>(size_), PeerTraffic{});
  for (int r = 0; r < size_; ++r) {
    for (const PeerTraffic& peer :
         endpoints[static_cast<std::size_t>(r)]->peer_traffic())
      last_rank_traffic_[static_cast<std::size_t>(r)] += peer;
  }

  publish_cluster_run_metrics(TransportKind::InProcess, size_,
                              bytes_transferred() - bytes_before,
                              messages_sent() - messages_before,
                              watch.seconds());
  // Drain leftover messages so a failed run cannot poison the next one.
  if (first_error) {
    for (auto& box : mailboxes_) {
      std::lock_guard<std::mutex> lock(box->mutex);
      box->messages.clear();
    }
    std::rethrow_exception(first_error);
  }
}

}  // namespace tinge::cluster
