#include "cluster/framing.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

namespace tinge::cluster {

SocketError::SocketError(const std::string& what, int errno_value)
    : std::runtime_error(what + ": " + std::strerror(errno_value)),
      errno_(errno_value) {}

bool SocketError::peer_gone() const {
  return errno_ == EPIPE || errno_ == ECONNRESET;
}

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void write_full(int fd, const void* data, std::size_t bytes) {
  const char* cursor = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t sent = ::send(fd, cursor, bytes, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw SocketError("send failed", errno);
    }
    cursor += sent;
    bytes -= static_cast<std::size_t>(sent);
  }
}

bool read_full(int fd, void* data, std::size_t bytes) {
  char* cursor = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t got = ::recv(fd, cursor, bytes, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF: peer closed, possibly mid-frame.
    cursor += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

void write_frame(int fd, std::uint32_t kind, std::int32_t tag,
                 const void* payload, std::size_t bytes) {
  FrameHeader header;
  header.kind = kind;
  header.tag = tag;
  header.bytes = bytes;
  write_full(fd, &header, sizeof(header));
  if (bytes > 0) write_full(fd, payload, bytes);
}

bool read_frame(int fd, FrameHeader& header, std::vector<std::byte>& payload,
                std::size_t max_payload_bytes) {
  if (!read_full(fd, &header, sizeof(header))) return false;
  if (header.magic != kFrameMagic) return false;
  if (header.bytes > max_payload_bytes) return false;
  payload.resize(header.bytes);
  if (header.bytes > 0 && !read_full(fd, payload.data(), payload.size())) {
    return false;
  }
  return true;
}

}  // namespace tinge::cluster
