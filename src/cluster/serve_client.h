// Blocking client for the tinge_serve daemon (cluster/serve_protocol.h).
//
// One ServeClient is one TCP connection with request/response framing on
// top. The API is synchronous — send a query, block for its response —
// which is exactly what the CLI, the load bench's per-client threads and
// the byte-identity tests need. Not thread-safe: one ServeClient per
// thread (connections are cheap; the daemon is built for many of them).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cluster/serve_protocol.h"
#include "core/estimator_kind.h"
#include "core/mi_query.h"

namespace tinge::cluster {

/// Final summary of a SweepJob (parsed from the daemon's JSON response).
struct SweepJobResult {
  std::size_t pairs = 0;
  std::size_t edges = 0;
  std::size_t tiles = 0;
  std::size_t tiles_resumed = 0;
  double seconds = 0.0;
  std::string kernel;
  std::string estimator;
};

class ServeClient {
 public:
  /// Connects to a daemon on the loopback interface. Throws
  /// std::runtime_error if nobody is listening.
  ServeClient(const std::string& host, int port);

  /// Rendezvous through a daemon port file ("<port> <nonce>\n"); nonce 0
  /// accepts any stamp. Throws if the file is missing or stale.
  static ServeClient from_port_file(const std::string& path,
                                    std::uint64_t expected_nonce = 0);

  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&&) = delete;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Liveness probe (round-trips an empty frame).
  void ping();

  /// MI for each pair, in request order — bit-identical to the batch
  /// pipeline for the daemon's dataset/config. `estimator` defaults to
  /// whatever the daemon was configured with.
  std::vector<double> mi_pairs(std::span<const GenePair> pairs);
  std::vector<double> mi_pairs(std::span<const GenePair> pairs,
                               EstimatorKind estimator);

  /// A gene's strongest network neighbors (weight-descending; k = 0 means
  /// all of them).
  std::vector<ServeEdge> neighborhood(std::uint32_t gene, std::uint32_t k);

  /// The k heaviest edges of the whole network (k = 0 means every edge),
  /// weight-descending.
  std::vector<ServeEdge> top_edges(std::uint32_t k);

  /// Every network edge with both endpoints in `genes`.
  std::vector<ServeEdge> subgraph(std::span<const std::uint32_t> genes);

  /// Live metrics-registry snapshot as a JSON document string.
  std::string metrics_json();

  /// Submits a sweep job and blocks until it completes; `on_event` (may be
  /// empty) receives each streamed progress JSON string as it arrives.
  SweepJobResult sweep_job(
      const std::function<void(const std::string&)>& on_event = {});

  /// Asks the daemon to exit its serve loop.
  void shutdown_server();

 private:
  struct Reply {
    ServeResponseHeader header;
    std::vector<std::byte> body;  // payload after the response header
  };

  /// Sends one request and blocks for its response, dispatching any event
  /// frames with the same tag to `on_event` along the way. Throws
  /// std::runtime_error carrying the daemon's message on error status.
  Reply roundtrip(QueryKind kind, std::uint32_t estimator, std::uint32_t k,
                  std::span<const std::uint32_t> items,
                  const std::function<void(const std::string&)>& on_event = {});

  std::vector<ServeEdge> edge_query(QueryKind kind, std::uint32_t k,
                                    std::span<const std::uint32_t> items);

  int fd_ = -1;
  std::int32_t next_tag_ = 1;
};

}  // namespace tinge::cluster
