// TINGe-classic's distributed all-pairs MI — the cluster baseline the
// paper's single-chip solution replaces.
//
// Algorithm (owner-computes with a ring pipeline, as in Zola et al.):
//   * genes are split into P contiguous blocks, one per rank ("loaded
//     locally": each rank's block is materialized on that rank only);
//   * every unordered block pair {a, b} (a < b) is assigned to exactly one
//     rank by the classic balanced rule: rank a if (a + b) is even, rank b
//     otherwise; diagonal pairs (within-block) belong to the owner;
//   * blocks circulate around the ring for P-1 steps; at each step a rank
//     forwards the traveling block and computes the block-pair it owns, if
//     any, between its resident block and the arrival;
//   * every rank ships its surviving edges to rank 0, which merges them.
//
// The communication cost this incurs — each block traverses the whole ring,
// so ~(P-1) * (n*m*4 bytes / P) per step schedule — is the quantity
// bench_cluster_baseline reports against the paper's "zero, it's one chip".
//
// The sweep itself (ring_sweep) is written against the rank-handle Comm
// facade only, so it runs unchanged over the in-process rank-thread backend
// and over real TCP worker processes (see transport.h / launcher.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/transport.h"
#include "core/config.h"
#include "core/pair_statistic.h"
#include "graph/network.h"
#include "preprocess/rank_transform.h"

namespace tinge::cluster {

struct ClusterStats {
  int ranks = 0;
  std::string transport = "inproc";
  std::string balance = "static";       ///< tile assignment: static | lease
  std::uint64_t bytes_transferred = 0;  ///< payload bytes through the ring
  std::uint64_t messages = 0;
  std::vector<std::uint64_t> bytes_per_rank;  ///< payload bytes sent, by rank
  std::vector<std::size_t> pairs_per_rank;
  /// Wall seconds each rank spent inside tile compute (straggle included).
  std::vector<double> busy_seconds_per_rank;
  std::size_t pairs_total = 0;
  double seconds = 0.0;
  // Lease-mode accounting (zero under static balancing).
  std::size_t leases_granted = 0;
  std::size_t steals = 0;  ///< tiles computed off the static owner rank
  std::size_t tiles_reclaimed = 0;
  std::vector<int> dead_ranks;

  /// max/min computed pairs across ranks that computed any (1.0 = perfectly
  /// balanced; 1.0 when fewer than two ranks computed pairs).
  double imbalance() const;
  /// Predicted wall imbalance of a *static* split: max/min per-rank compute
  /// rate (pairs per busy second) across active ranks. A 5x straggler shows
  /// up here whether or not the balancer hid it.
  double imbalance_pre() const;
  /// Actual wall imbalance: max/min per-rank busy seconds across active
  /// ranks. Under lease balancing this is what the stealing bought.
  double imbalance_post() const;
};

/// One rank's share of the distributed sweep, callable from any Transport
/// endpoint (in-process rank-thread or a real worker process). Every rank
/// loads its resident gene block from `ranked`, circulates blocks around
/// the ring and ships surviving edges to rank 0.
///
/// Returns the merged, finalized network on rank 0 and an empty finalized
/// network elsewhere. If `pairs_per_rank_out` is non-null it is filled on
/// rank 0 with per-rank computed-pair counts (left empty on other ranks);
/// `busy_seconds_out` likewise with per-rank compute-wall seconds.
/// `cancel`, when non-null, is polled between tiles of every local sweep;
/// a tripped flag aborts the rank with SweepAborted (see core/sweep.h).
GeneNetwork ring_sweep(Comm& comm, const PairStatistic& statistic,
                       const RankedMatrix& ranked, double threshold,
                       const TingeConfig& config,
                       std::vector<std::size_t>* pairs_per_rank_out = nullptr,
                       const std::atomic<bool>* cancel = nullptr,
                       std::vector<double>* busy_seconds_out = nullptr);

/// Runs the distributed computation on `ranks` ranks over the chosen
/// backend and returns the merged thresholded network (identical, up to
/// edge order, to MiEngine::compute_network on the same inputs —
/// test-enforced, for both backends). `config` supplies the kernel choice;
/// threading inside a rank is not used (one thread per rank, as in the
/// classic flat-MPI TINGe). config.cluster_balance selects the sweep:
/// "static" runs the ring above, "lease" runs the rank-0 tile-lease
/// protocol (see lease_mi.h) over the same transport.
GeneNetwork cluster_compute_network(
    const PairStatistic& statistic, const RankedMatrix& ranked,
    double threshold, int ranks, const TingeConfig& config,
    ClusterStats* stats = nullptr,
    TransportKind kind = TransportKind::InProcess,
    const TransportOptions& options = {});

/// The block-pair ownership rule, exposed for tests: which rank computes
/// unordered block pair {a, b} (a <= b) among `ranks` blocks.
int block_pair_owner(int a, int b, int ranks);

}  // namespace tinge::cluster
