// Multi-process launch support for the TCP transport: rendezvous directory
// lifecycle plus a fork/exec worker launcher. tinge_cli uses this to spawn
// N tinge_worker processes that join one mesh; each worker calls
// make_transport(TransportKind::Tcp, ...) with the rendezvous directory the
// launcher hands it on the command line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tinge::cluster {

/// Creates a fresh private directory for TCP rendezvous port files under
/// $TMPDIR (or /tmp). Remove it with remove_rendezvous_dir when the run is
/// over.
std::string make_rendezvous_dir();

/// Best-effort removal of a rendezvous directory and the files inside it.
void remove_rendezvous_dir(const std::string& dir);

/// Best-effort removal of rendezvous debris (`*.port`, `*.port.tmp`) from
/// `dir` without touching the directory itself or anything else in it.
/// The launcher runs this before spawning a mesh into a reused directory
/// (a crashed prior run leaves its port files behind) and again after an
/// abnormal worker exit, so the next run never dials a dead port.
void scrub_port_files(const std::string& dir);

/// A fresh nonzero run nonce for stamping rendezvous port files
/// (TransportOptions::run_nonce): mixes a system random source with the
/// pid and clock so two runs — even back-to-back in one process — never
/// share one.
std::uint64_t make_run_nonce();

/// Exit code a worker uses when it observed a *peer* failure
/// (PeerFailureError / TimeoutError) rather than failing itself — lets the
/// launcher separate the rank that caused a failure from the ranks that
/// merely watched it happen.
inline constexpr int kWorkerExitPeerFailure = 3;

/// Sentinel exit_code for a worker the launcher never reaped (waitpid
/// failed, e.g. ECHILD because something reaped our children). Unknown
/// outcome must read as failure, never as success.
inline constexpr int kWorkerExitUnreaped = -2;

/// One worker process's outcome.
struct WorkerExit {
  int rank = 0;
  /// 0 on success; 128+signal if killed by a signal; kWorkerExitUnreaped
  /// until the launcher actually reaps the process.
  int exit_code = kWorkerExitUnreaped;
  /// 0-based order in which the launcher reaped this worker (-1 if never
  /// reaped) — how "which rank failed *first*" is attributed.
  int reap_order = -1;

  bool reaped() const { return reap_order >= 0; }
  bool failed() const { return exit_code != 0; }
};

/// Spawns `size` copies of `program`, appending
///   --cluster-rank=<r> --cluster-size=<size> --rendezvous=<dir>
///   --rendezvous-nonce=<fresh nonce>
/// to `common_args`, and reaps them all. Stale port files in `dir` are
/// scrubbed before spawning, and scrubbed again after a failed run, so a
/// crashed mesh never leaves port files a later run could dial. If any
/// worker fails, the survivors are SIGTERMed so a half-dead mesh cannot
/// hang the launcher past the workers' own rendezvous timeout. Returns
/// per-worker exits indexed by rank; ranks the launcher could not reap
/// keep the kWorkerExitUnreaped sentinel.
std::vector<WorkerExit> launch_workers(
    const std::string& program, const std::vector<std::string>& common_args,
    int size, const std::string& rendezvous_dir);

/// True iff every worker was reaped and exited with status 0.
bool all_workers_succeeded(const std::vector<WorkerExit>& exits);

/// The worker that failed first: the failed exit with the lowest
/// reap_order, falling back to the lowest-rank unreaped worker when no
/// reaped worker failed. nullptr when the run succeeded.
const WorkerExit* first_failure(const std::vector<WorkerExit>& exits);

/// Human-readable cause for one worker's exit: "exited with code 40",
/// "killed by signal 15 (Terminated)", "observed a peer failure (exit
/// code 3)", "was never reaped (outcome unknown)".
std::string describe_worker_exit(const WorkerExit& exit);

/// Path of the binary `name` living next to the currently running
/// executable (resolved via /proc/self/exe, falling back to argv0's
/// directory) — how tinge_cli finds tinge_worker without an install step.
std::string sibling_binary_path(const char* argv0, const std::string& name);

}  // namespace tinge::cluster
