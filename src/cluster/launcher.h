// Multi-process launch support for the TCP transport: rendezvous directory
// lifecycle plus a fork/exec worker launcher. tinge_cli uses this to spawn
// N tinge_worker processes that join one mesh; each worker calls
// make_transport(TransportKind::Tcp, ...) with the rendezvous directory the
// launcher hands it on the command line.
#pragma once

#include <string>
#include <vector>

namespace tinge::cluster {

/// Creates a fresh private directory for TCP rendezvous port files under
/// $TMPDIR (or /tmp). Remove it with remove_rendezvous_dir when the run is
/// over.
std::string make_rendezvous_dir();

/// Best-effort removal of a rendezvous directory and the files inside it.
void remove_rendezvous_dir(const std::string& dir);

/// One worker process's outcome.
struct WorkerExit {
  int rank = 0;
  int exit_code = 0;  ///< 0 on success; 128+signal if killed by a signal
};

/// Spawns `size` copies of `program`, appending
///   --cluster-rank=<r> --cluster-size=<size> --rendezvous=<dir>
/// to `common_args`, and reaps them all. If any worker fails, the
/// survivors are SIGTERMed so a half-dead mesh cannot hang the launcher
/// past the workers' own rendezvous timeout. Returns per-worker exits
/// indexed by rank.
std::vector<WorkerExit> launch_workers(
    const std::string& program, const std::vector<std::string>& common_args,
    int size, const std::string& rendezvous_dir);

/// True iff every worker exited with status 0.
bool all_workers_succeeded(const std::vector<WorkerExit>& exits);

/// Path of the binary `name` living next to the currently running
/// executable (resolved via /proc/self/exe, falling back to argv0's
/// directory) — how tinge_cli finds tinge_worker without an install step.
std::string sibling_binary_path(const char* argv0, const std::string& name);

}  // namespace tinge::cluster
