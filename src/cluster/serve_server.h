// The tinge_serve daemon: a resident dataset answering network queries.
//
// The batch pipeline is a one-shot program — load, sweep, write edges,
// exit. tinge_serve keeps everything the sweep staged (the preprocessed
// matrix, the ranked matrix, the weight table, the thresholded network)
// resident and answers concurrent client queries over the same framed TCP
// transport the mesh uses: on-demand MI(x, y) for any estimator,
// gene-neighborhood / top-k / subgraph extraction over the built network,
// live metrics snapshots, and "sweep job" submissions whose progress is
// streamed back from the metrics registry.
//
// Query execution (DESIGN.md §6j): each connected client gets a handler
// thread, but every MI pair query funnels through one PairBatcher, which
// coalesces the pair requests that arrive within a small flush deadline
// into a single planner batch — so concurrent single-pair clients ride one
// panel sweep instead of one sweep each, exactly the row-reuse economics
// the batch engine is built on. Computed tiles land in a shared
// byte-budgeted LRU (core/mi_query.h) keyed by (dataset, estimator,
// kernel, block), so a warm pair query is a hash lookup, test-enforced via
// the serve.cache.hits counter.
//
// Startup either computes the network or restores it: when the config
// names a checkpoint path, the build runs the checkpointed engine with
// keep_checkpoint, so a daemon restart replays the completed journal
// instead of recomputing the triangle.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/serve_protocol.h"
#include "core/config.h"
#include "core/mi_engine.h"
#include "core/mi_query.h"
#include "core/null_distribution.h"
#include "core/pair_statistic.h"
#include "data/expression_matrix.h"
#include "graph/network.h"
#include "parallel/thread_pool.h"
#include "preprocess/rank_transform.h"

namespace tinge::cluster {

struct ServeOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back via
  /// ServeServer::port()). The daemon binds loopback only, like the mesh.
  int port = 0;
  /// When non-empty, the chosen port is published here in the rendezvous
  /// port-file format ("<port> <nonce>\n", cluster/tcp_transport.h) so
  /// clients can rendezvous without parsing daemon output.
  std::string port_file;
  /// Nonce stamped into the port file (0 = unstamped).
  std::uint64_t run_nonce = 0;
  /// How long the pair batcher waits after the first queued pair query
  /// before flushing the batch to the planner.
  double flush_deadline_ms = 2.0;
  /// Tile-cache budget in bytes (0 disables caching).
  std::size_t cache_bytes = std::size_t(64) << 20;
  /// Sweep threads for query batches and sweep jobs (0 = config.threads,
  /// which itself falls back to all hardware threads).
  int threads = 0;
  /// Identity string baked into tile-cache keys; defaults to "default".
  std::string dataset_id = "default";
};

/// Everything the daemon keeps resident for one dataset: the preprocessed
/// expression matrix (Pearson reads raw values), the ranked matrix the
/// kernels sweep, the permutation null and its threshold, the thresholded
/// network with its adjacency index, the shared tile cache, and one lazy
/// MiQueryEngine per estimator queried so far.
class ServeState {
 public:
  /// Runs the single-process pipeline stages (impute, filter, rank,
  /// statistic, null, threshold, sweep) exactly as sharded_build's p == 1
  /// path does — same stage order, same calls — so every value the daemon
  /// later serves is bit-identical to the batch pipeline for this config.
  /// When config.checkpoint_path is set the sweep runs checkpointed with
  /// keep_checkpoint, so a completed journal from a previous run (or a
  /// crashed one) restores / resumes the network instead of recomputing.
  ServeState(ExpressionMatrix&& expression, const TingeConfig& config,
             const ServeOptions& options);

  const TingeConfig& config() const { return config_; }
  const GeneNetwork& network() const { return network_; }
  const Adjacency& adjacency() const { return *adjacency_; }
  const RankedMatrix& ranked() const { return ranked_; }
  double threshold() const { return threshold_; }
  const EngineStats& build_stats() const { return build_stats_; }
  TileCache& cache() { return cache_; }
  par::ThreadPool& pool() { return *pool_; }
  std::size_t n_genes() const { return ranked_.n_genes(); }

  /// The query engine for one estimator, created (with its statistic) on
  /// first use and kept for the daemon's lifetime. Thread-safe.
  MiQueryEngine& query_engine(EstimatorKind estimator);

  /// Re-runs the thresholded network sweep (the SweepJob query), invoking
  /// `progress(done, total)` as tiles complete. Returns the stats of the
  /// pass. Serialized: concurrent jobs queue on an internal mutex.
  EngineStats run_sweep_job(
      const std::function<void(std::size_t, std::size_t)>& progress);

 private:
  TingeConfig config_;
  ExpressionMatrix working_;  // post-filter; statistics may reference it
  RankedMatrix ranked_;
  std::shared_ptr<EmpiricalDistribution> null_;
  double threshold_ = 0.0;
  std::unique_ptr<par::ThreadPool> pool_;
  GeneNetwork network_;
  std::unique_ptr<Adjacency> adjacency_;
  EngineStats build_stats_;
  TileCache cache_;
  std::string dataset_id_;

  struct EstimatorSlot {
    std::unique_ptr<PairStatistic> statistic;
    std::unique_ptr<MiQueryEngine> engine;
  };
  std::mutex estimators_mutex_;
  std::map<EstimatorKind, EstimatorSlot> estimators_;
  std::mutex sweep_job_mutex_;
};

/// Coalesces concurrent MI pair queries into planner batches: the first
/// query to arrive opens a batch window of flush_deadline_ms; everything
/// queued within the window is drained together, grouped by estimator, and
/// answered through one MiQueryEngine::pair_values call per estimator — so
/// pairs landing in the same tile share one panel sweep and one cache
/// entry no matter which client asked.
class PairBatcher {
 public:
  PairBatcher(ServeState& state, double flush_deadline_ms);
  ~PairBatcher();

  /// Blocks until the batch containing this query is answered. Throws what
  /// the planner threw (e.g. ContractViolation for an invalid pair).
  std::vector<double> query(EstimatorKind estimator,
                            std::vector<GenePair> pairs);

  /// Batches flushed so far (each = one planner invocation window).
  std::uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending;
  void worker();

  ServeState& state_;
  std::chrono::microseconds flush_deadline_;
  std::mutex mutex_;
  std::condition_variable queued_;
  std::deque<std::shared_ptr<Pending>> queue_;
  bool stop_ = false;
  std::atomic<std::uint64_t> batches_{0};
  std::thread thread_;
};

/// The serve daemon's network face: accepts framed-TCP clients on loopback
/// and runs one handler thread per client until the peer disconnects or a
/// Shutdown query arrives. Abrupt disconnects (peer closes mid-frame) are
/// routine, not fatal: the handler drops that client and the daemon keeps
/// serving (framing sends use MSG_NOSIGNAL, so no SIGPIPE either).
class ServeServer {
 public:
  /// Binds and starts accepting immediately. `state` must outlive the
  /// server.
  ServeServer(ServeState& state, const ServeOptions& options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// The port actually bound (useful with options.port == 0).
  int port() const { return port_; }

  /// Blocks until a Shutdown query arrives or stop() is called.
  void wait();

  /// Stops accepting, disconnects every client and joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  std::size_t clients_served() const {
    return clients_served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_client(int fd, std::uint64_t client_id);
  void serve_request(int fd, std::mutex& send_mutex, std::int32_t tag,
                     std::uint64_t client_id, const ServeRequestHeader& header,
                     const std::vector<std::byte>& payload);

  ServeState& state_;
  ServeOptions options_;
  PairBatcher batcher_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex clients_mutex_;
  std::vector<std::thread> client_threads_;
  std::vector<int> client_fds_;
  std::atomic<std::uint64_t> clients_served_{0};
  std::atomic<std::uint64_t> next_client_id_{0};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_ = false;
  std::atomic<bool> stopping_{false};
};

}  // namespace tinge::cluster
