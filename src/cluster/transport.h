// The pluggable cluster transport: the seam between the distributed TINGe
// algorithm and whatever moves its bytes.
//
// The paper's pitch is that one chip replaces the cluster that TINGe-classic
// (Zola et al.) needed. To make that comparison concrete we implement the
// cluster algorithm over an abstract `Transport` — a deliberately tiny
// MPI-flavoured subset (ranked SPMD, tagged point-to-point, barrier, byte
// accounting) — with two interchangeable backends:
//
//   * InProcessCluster (inproc_transport.h): every rank is a thread,
//     messages are buffer copies through per-rank mailboxes. Measures
//     communication volume exactly, latency not at all.
//   * TcpTransport (tcp_transport.h): every rank is a real OS process (or
//     thread) speaking length-prefixed frames over localhost sockets, with
//     file-based rendezvous and connect retry/backoff. Measures real
//     network seconds.
//
// Call sites never name a concrete backend: they go through make_cluster()
// (SPMD over N ranks in one process) or make_transport() (join as one rank
// of a multi-process cluster), and talk through the `Comm` rank-handle
// facade. Both backends are test-enforced to deliver identical message
// semantics and identical pipeline results (tests/test_transport.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/contracts.h"

namespace tinge::cluster {

/// Which concrete backend carries the messages.
enum class TransportKind {
  InProcess,  ///< rank-threads + mailboxes in one process (simulated network)
  Tcp,        ///< framed localhost TCP sockets (real network path)
};

/// Stable short name ("inproc" / "tcp"), used in CLI flags and manifests.
const char* transport_kind_name(TransportKind kind);

/// Inverse of transport_kind_name. Throws std::invalid_argument on an
/// unknown name so typos in scripts fail loudly.
TransportKind parse_transport_kind(std::string_view name);

/// A peer of this endpoint is gone: its process/thread exited (or its
/// connection closed) while a recv or barrier still needed it. Both
/// backends throw this instead of hanging, with the failing rank pair in
/// the message so a 22-minute whole-genome run dies with a name attached.
class PeerFailureError : public std::runtime_error {
 public:
  PeerFailureError(const std::string& what, int rank, int peer)
      : std::runtime_error(what), rank_(rank), peer_(peer) {}

  /// The rank that observed the failure.
  int rank() const { return rank_; }
  /// The peer rank that failed (or -1 when unattributable).
  int peer() const { return peer_; }

 private:
  int rank_;
  int peer_;
};

/// A recv or barrier deadline expired: the peer is alive-but-stuck (or the
/// message was lost). The failure detector for hangs that a closed
/// connection cannot surface.
class TimeoutError : public PeerFailureError {
 public:
  TimeoutError(const std::string& what, int rank, int peer)
      : PeerFailureError(what, rank, peer) {}
};

/// Payload traffic between one rank and one peer. Control frames (barrier
/// tokens, connection handshakes) are excluded so both backends account
/// the same quantity: bytes the *algorithm* moved.
struct PeerTraffic {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_received = 0;

  PeerTraffic& operator+=(const PeerTraffic& other) {
    bytes_sent += other.bytes_sent;
    messages_sent += other.messages_sent;
    bytes_received += other.bytes_received;
    messages_received += other.messages_received;
    return *this;
  }
};

/// Options for constructing a transport endpoint / cluster runtime.
struct TransportOptions {
  int rank = 0;  ///< this endpoint's rank (make_transport only)
  int size = 1;  ///< total ranks in the cluster
  /// TCP rendezvous directory: each rank binds an ephemeral localhost port
  /// and publishes it as `<dir>/rank<r>.port`; peers poll for the file and
  /// connect with exponential backoff (so late-starting workers are fine).
  /// Empty = make_cluster creates (and removes) a fresh one per run;
  /// make_transport(Tcp) requires it.
  std::string rendezvous_dir;
  /// Give up on rendezvous/connect after this long.
  double connect_timeout_seconds = 30.0;
  /// Default deadline for recv() and barrier(): a wait that exceeds it
  /// throws TimeoutError instead of blocking forever on an alive-but-stuck
  /// peer. <= 0 disables the deadline (wait indefinitely — the historical
  /// behavior, and the library default; the CLI sets a finite one).
  double recv_timeout_seconds = 0.0;
  /// Run nonce stamped into published port files and required of the port
  /// files this endpoint reads. A crashed prior run can leave stale
  /// `rank<r>.port` files in a reused rendezvous_dir; without the nonce a
  /// new mesh dials those dead ports until its connect timeout. 0 = accept
  /// any port file (single-run temp dirs; the launcher always sets one).
  std::uint64_t run_nonce = 0;
};

/// One rank's endpoint: the pure transport interface. Methods are called
/// by the owning rank (thread or process) only. Tags must be >= 0 — the
/// negative tag space is reserved for internal control traffic.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;
  virtual TransportKind kind() const = 0;

  /// Buffered, tagged point-to-point send (never blocks indefinitely on
  /// the receiver: every backend drains incoming frames to a mailbox).
  virtual void send(int dest, const void* data, std::size_t bytes,
                    int tag) = 0;

  /// Blocks until a message with (src, tag) arrives; returns its payload.
  /// Messages from the same source with *other* tags may arrive first and
  /// are left queued — matching is by (src, tag), FIFO within a match.
  /// Waits at most the options' default recv deadline (TimeoutError past
  /// it); throws PeerFailureError if the peer dies with no match queued.
  virtual std::vector<std::byte> recv(int src, int tag) = 0;

  /// recv with a per-call deadline overriding the options default:
  /// timeout_seconds > 0 is the deadline, <= 0 waits indefinitely.
  virtual std::vector<std::byte> recv(int src, int tag,
                                      double timeout_seconds) = 0;

  /// Non-blocking probe: returns the payload of a queued message matching
  /// (src, tag), or std::nullopt when none is queued right now. Same
  /// matching and failure semantics as recv minus the waiting — when no
  /// match is queued and the peer can never send one (finished rank-thread,
  /// closed connection) this throws PeerFailureError instead of returning
  /// nullopt, so a polling loop learns of a dead peer on its next probe.
  /// The lease protocol's rank-0 loop is built on this.
  virtual std::optional<std::vector<std::byte>> try_recv(int src, int tag) = 0;

  /// All ranks must arrive before any proceeds. Reusable. Subject to the
  /// options' default recv deadline (a rank that never arrives surfaces as
  /// TimeoutError / PeerFailureError, not a hang).
  virtual void barrier() = 0;

  /// Per-peer payload traffic of this endpoint, indexed by peer rank
  /// (self-sends count under the own rank's slot).
  virtual std::vector<PeerTraffic> peer_traffic() const = 0;

  // --- aggregate accounting (sums of peer_traffic) ----------------------
  std::uint64_t bytes_sent() const;
  std::uint64_t bytes_received() const;
  std::uint64_t messages_sent() const;
  std::uint64_t messages_received() const;

  /// Publishes this endpoint's totals and per-peer counters into the
  /// process-global obs::MetricsRegistry (cluster.transport.* counters).
  void publish_metrics() const;
};

/// Rank-handle facade over a Transport endpoint: the typed helpers the
/// SPMD drivers use. Non-owning; copyable like a reference.
class Comm {
 public:
  explicit Comm(Transport& transport) : transport_(&transport) {}

  int rank() const { return transport_->rank(); }
  int size() const { return transport_->size(); }
  Transport& transport() const { return *transport_; }

  void send(int dest, const void* data, std::size_t bytes, int tag) {
    TINGE_EXPECTS(tag >= 0);
    transport_->send(dest, data, bytes, tag);
  }

  std::vector<std::byte> recv(int src, int tag) {
    TINGE_EXPECTS(tag >= 0);
    return transport_->recv(src, tag);
  }

  /// recv with a per-call deadline (> 0 seconds; <= 0 waits forever).
  std::vector<std::byte> recv(int src, int tag, double timeout_seconds) {
    TINGE_EXPECTS(tag >= 0);
    return transport_->recv(src, tag, timeout_seconds);
  }

  /// Non-blocking probe (see Transport::try_recv).
  std::optional<std::vector<std::byte>> try_recv(int src, int tag) {
    TINGE_EXPECTS(tag >= 0);
    return transport_->try_recv(src, tag);
  }

  void barrier() { transport_->barrier(); }

  template <typename T>
  void send_vector(int dest, const std::vector<T>& values, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, values.data(), values.size() * sizeof(T), tag);
  }

  template <typename T>
  std::vector<T> recv_vector(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> raw = recv(src, tag);
    TINGE_ENSURES(raw.size() % sizeof(T) == 0);
    std::vector<T> values(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
    return values;
  }

 private:
  Transport* transport_;
};

/// A cluster runtime: owns the rank endpoints for SPMD executions inside
/// one process (rank-threads for both backends; the TCP backend gives each
/// thread a real socket endpoint). Multi-process execution instead uses
/// make_transport() in each worker — see launcher.h.
class Cluster {
 public:
  virtual ~Cluster() = default;

  virtual int size() const = 0;
  virtual TransportKind kind() const = 0;

  /// Runs body(comm) on `size` ranks; returns when all complete.
  /// Exceptions from any rank are rethrown on the caller (first wins).
  virtual void run(const std::function<void(Comm&)>& body) = 0;

  /// Total payload bytes moved through send() across all run() calls.
  virtual std::uint64_t bytes_transferred() const = 0;
  /// Total payload messages sent across all run() calls.
  virtual std::uint64_t messages_sent() const = 0;
  /// Per-rank aggregate traffic for the most recent run().
  virtual std::vector<PeerTraffic> rank_traffic() const = 0;
};

/// Factory for SPMD-in-one-process execution; call sites never name a
/// concrete backend. `options.rank`/`options.size` are ignored (the
/// runtime owns all ranks).
std::unique_ptr<Cluster> make_cluster(TransportKind kind, int size,
                                      const TransportOptions& options = {});

/// Factory for joining a (possibly multi-process) cluster as one rank.
/// Tcp: rendezvous + connect per `options`. InProcess: only size == 1 is
/// meaningful from a single call site (a loopback self-transport); use
/// make_cluster for multi-rank in-process execution.
std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const TransportOptions& options);

/// Shared run accounting both Cluster backends publish after an SPMD
/// execution (cluster.runs / bytes_transferred / messages_sent / ranks /
/// run_seconds in the global registry).
void publish_cluster_run_metrics(TransportKind kind, int ranks,
                                 std::uint64_t bytes, std::uint64_t messages,
                                 double seconds);

}  // namespace tinge::cluster
