// Per-pair permutation testing — the naive baseline that the universal
// null (core/null_distribution.h) replaces. Kept (a) as the reference the
// universal null is validated against and (b) for the cost comparison in
// experiment T3.
#pragma once

#include <cstdint>
#include <span>

#include "core/pair_statistic.h"
#include "mi/bspline_mi.h"

namespace tinge {

struct PairTestResult {
  double mi = 0.0;       ///< observed statistic (MI in nats for bspline)
  double p_value = 1.0;  ///< (#{null >= mi} + 1) / (q + 1)
};

/// Permutes ranks_y against ranks_x `q` times and estimates the p-value of
/// the observed statistic under the independence null. The shuffled draws
/// score through eval_null_pair, matching the universal null's treatment
/// of value-based statistics.
PairTestResult pair_permutation_test(const PairStatistic& statistic,
                                     std::span<const std::uint32_t> ranks_x,
                                     std::span<const std::uint32_t> ranks_y,
                                     std::size_t q, std::uint64_t seed,
                                     PairScratch& scratch);

/// B-spline convenience wrapper: bit-identical to the pre-redesign test.
PairTestResult pair_permutation_test(const BsplineMi& estimator,
                                     std::span<const std::uint32_t> ranks_x,
                                     std::span<const std::uint32_t> ranks_y,
                                     std::size_t q, std::uint64_t seed,
                                     JointHistogram& scratch,
                                     MiKernel kernel = MiKernel::Auto);

}  // namespace tinge
