// The MI query planner (DESIGN.md §6j): on-demand pair values over the
// batch executor, with a tile cache.
//
// The serve daemon answers "MI(x, y)?" long after the batch network was
// built. Recomputing a single pair through eval_pair would be easy but
// wrong twice over: it abandons the panel kernels' row reuse (the entire
// perf story), and it opens a second code path whose bits would have to be
// proven equal to the batch sweep's forever. Instead the planner maps each
// requested pair to the T x T tile that contained it in the batch pass
// (identical block boundaries: multiples of config.tile_size), sweeps just
// the missing tiles through run_sweep with the same statistic and resolved
// kernel plan, and caches whole tiles keyed by
// (dataset, estimator, kernel, block) in a byte-budgeted LRU. Same tiles,
// same panels, same kernel — so every value handed back is bit-identical
// to the batch pipeline's, test-enforced, and a warm pair costs a hash
// lookup instead of a panel sweep (cache-hit counters make that
// observable and test-enforceable).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/pair_statistic.h"
#include "core/tile.h"

namespace tinge {

class RankedMatrix;
namespace par {
class ThreadPool;
}

/// One requested gene pair. Order does not matter (MI is symmetric); the
/// planner normalizes to a < b. a == b is a contract violation.
struct GenePair {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Identity of one cached tile: which dataset, which estimator, which
/// resolved kernel variant, which T x T block of the upper triangle.
/// Kernel is part of the key not because variants disagree (they are
/// bit-identical, test-enforced) but because the key must never be wider
/// than the guarantee: two daemons with different resolved plans sharing a
/// cache file someday must not mix entries silently.
struct TileCacheKey {
  std::string dataset;
  EstimatorKind estimator = EstimatorKind::Bspline;
  std::string kernel;
  std::size_t block_row = 0;
  std::size_t block_col = 0;

  bool operator==(const TileCacheKey& other) const = default;
};

struct TileCacheKeyHash {
  std::size_t operator()(const TileCacheKey& key) const;
};

/// All pair values of one tile, dense over the block's rectangle (cells
/// with i >= j in a diagonal block stay 0 and are never read back).
class TileValues {
 public:
  explicit TileValues(const Tile& tile)
      : tile_(tile),
        cols_(tile.col_end - tile.col_begin),
        values_((tile.row_end - tile.row_begin) * cols_, 0.0) {}

  const Tile& tile() const { return tile_; }

  double at(std::size_t i, std::size_t j) const {
    return values_[(i - tile_.row_begin) * cols_ + (j - tile_.col_begin)];
  }
  void set(std::size_t i, std::size_t j, double value) {
    values_[(i - tile_.row_begin) * cols_ + (j - tile_.col_begin)] = value;
  }

  /// Resident footprint charged against the cache budget.
  std::size_t bytes() const {
    return sizeof(TileValues) + values_.size() * sizeof(double);
  }

 private:
  Tile tile_;
  std::size_t cols_;
  std::vector<double> values_;
};

/// Byte-budgeted LRU over computed tiles. Thread-safe (the serve daemon
/// has one batcher thread per dataset today, but nothing in the interface
/// should bake that in). Values are shared_ptr so an entry evicted while a
/// request still holds it stays valid for that request.
class TileCache {
 public:
  /// max_bytes == 0 disables caching entirely (every get misses, puts are
  /// dropped) — the cold-path baseline the byte-identity tests compare
  /// against.
  explicit TileCache(std::size_t max_bytes);

  std::shared_ptr<const TileValues> get(const TileCacheKey& key);
  void put(const TileCacheKey& key, std::shared_ptr<const TileValues> values);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t bytes() const;
  std::size_t entries() const;

 private:
  struct Entry {
    TileCacheKey key;
    std::shared_ptr<const TileValues> values;
  };

  std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<TileCacheKey, std::list<Entry>::iterator,
                     TileCacheKeyHash>
      index_;
  std::size_t bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Plans and executes pair queries for one (dataset, estimator) pair:
/// resolves the statistic's kernel plan once, then answers pair batches
/// from the shared tile cache, sweeping only the missing tiles. One
/// MiQueryEngine per estimator the daemon serves; they share one
/// TileCache (the key carries the estimator).
///
/// Not internally synchronized: the serve daemon funnels all pair queries
/// for a dataset through one batcher thread, which is the intended caller.
class MiQueryEngine {
 public:
  /// `statistic`, `ranked`, `cache` and `pool` must outlive the engine.
  /// `pool` may be null (tiles then sweep inline on the calling thread).
  MiQueryEngine(const PairStatistic& statistic, const RankedMatrix& ranked,
                const TingeConfig& config, par::ThreadPool* pool,
                TileCache& cache, std::string dataset_id);

  /// MI for each requested pair, in request order. Bit-identical to the
  /// batch pipeline's value for the same dataset/config, cold or warm.
  std::vector<double> pair_values(std::span<const GenePair> pairs);

  /// Tiles actually swept (cache misses that hit run_sweep) since
  /// construction — frozen between calls means the cache answered alone.
  std::uint64_t tiles_swept() const {
    return tiles_swept_.load(std::memory_order_relaxed);
  }

  const char* kernel_name() const { return panels_.name; }
  EstimatorKind estimator() const { return statistic_->kind(); }

 private:
  const PairStatistic* statistic_;
  const RankedMatrix* ranked_;
  TingeConfig config_;
  PanelPlan panels_;
  par::ThreadPool* pool_;
  TileCache* cache_;
  std::string dataset_;
  std::size_t tile_size_;
  std::size_t n_genes_;
  std::atomic<std::uint64_t> tiles_swept_{0};
};

}  // namespace tinge
