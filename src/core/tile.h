// Cache-blocked decomposition of the upper-triangular pair space.
//
// All n*(n-1)/2 gene pairs are grouped into T x T tiles. A thread working a
// tile touches only 2T rank profiles plus its private histogram; T is chosen
// so that working set fits in cache (the tile-size ablation, experiment F5,
// sweeps it). Tiles are the unit of dynamic scheduling, exactly as in the
// paper.
#pragma once

#include <cstddef>
#include <vector>

#include "util/contracts.h"

namespace tinge {

struct Tile {
  std::size_t row_begin = 0, row_end = 0;  ///< gene range on the x side
  std::size_t col_begin = 0, col_end = 0;  ///< gene range on the y side

  /// Diagonal tiles enumerate i < j inside the block; off-diagonal tiles
  /// enumerate the full cross product.
  bool diagonal() const { return row_begin == col_begin; }

  /// Number of (i, j), i < j pairs in this tile.
  std::size_t pair_count() const {
    const std::size_t rows = row_end - row_begin;
    const std::size_t cols = col_end - col_begin;
    return diagonal() ? rows * (rows - 1) / 2 : rows * cols;
  }
};

/// Appends the T x T tiling of the upper triangle of [gene_begin, gene_end)
/// to `out`, row-major over block rows then block columns, skipping tiles
/// with zero (i < j) pairs. This enumeration order defines tile indices for
/// both the scheduler and the checkpoint journal — TileSet and every
/// SweepPlan factory share it so journal indices stay stable.
void append_triangle_tiles(std::size_t gene_begin, std::size_t gene_end,
                           std::size_t tile_size, std::vector<Tile>& out);

/// Appends the T x T tiling of the full [row_begin, row_end) x
/// [col_begin, col_end) rectangle to `out`, row-major. The two ranges must
/// be disjoint with rows below columns, so every (i, j) cell is an i < j
/// pair — the cross-block case of the ring sweep.
void append_rectangle_tiles(std::size_t row_begin, std::size_t row_end,
                            std::size_t col_begin, std::size_t col_end,
                            std::size_t tile_size, std::vector<Tile>& out);

class TileSet {
 public:
  TileSet(std::size_t n_genes, std::size_t tile_size);

  std::size_t count() const { return tiles_.size(); }
  const Tile& tile(std::size_t index) const {
    TINGE_EXPECTS(index < tiles_.size());
    return tiles_[index];
  }

  std::size_t n_genes() const { return n_genes_; }
  std::size_t tile_size() const { return tile_size_; }

  /// Sum of pair_count over all tiles == n*(n-1)/2.
  std::size_t total_pairs() const;

 private:
  std::size_t n_genes_;
  std::size_t tile_size_;
  std::vector<Tile> tiles_;
};

/// Visits every pair (i, j), i < j of a tile in row-major order.
template <typename Visitor>
void for_each_pair(const Tile& tile, Visitor&& visit) {
  for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
    const std::size_t j_begin =
        tile.diagonal() ? std::max(i + 1, tile.col_begin) : tile.col_begin;
    for (std::size_t j = j_begin; j < tile.col_end; ++j) visit(i, j);
  }
}

/// Visits the tile's pairs as row-gene panels: for each row gene i its
/// column range is chopped into runs of at most `max_width` consecutive
/// column genes and visit(i, j_first, width) is called per run. The final
/// run of a row (and every run of a short row) is narrower than max_width —
/// the ragged-tail case panel kernels must handle. Covers exactly the pairs
/// for_each_pair visits, in the same row-major order.
template <typename Visitor>
void for_each_row_panel(const Tile& tile, std::size_t max_width,
                        Visitor&& visit) {
  TINGE_EXPECTS(max_width >= 1);
  for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
    const std::size_t j_begin =
        tile.diagonal() ? std::max(i + 1, tile.col_begin) : tile.col_begin;
    for (std::size_t j = j_begin; j < tile.col_end; j += max_width)
      visit(i, j, std::min(max_width, tile.col_end - j));
  }
}

}  // namespace tinge
