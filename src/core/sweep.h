// The unified pair-sweep executor (DESIGN.md §6d).
//
// Every all-pairs sweep in the system — the engine's plain, checkpointed,
// teamed and dense passes and the cluster ring/lease sweeps' local +
// received-block computations — is the same algorithm: walk a set of tiles,
// sweep each tile's rows as row-reuse panels through a pair statistic, hand
// each pair's score to a consumer. run_sweep() is that algorithm written
// once, parameterized by four orthogonal policies:
//
//   * a TILE PLAN (SweepPlan): which tiles — the upper triangle of a gene
//     range (single-chip engine, ring diagonal blocks) or a rectangle
//     (ring cross-block steps);
//   * a PAIR STATISTIC (core/pair_statistic.h): what is computed per pair —
//     B-spline MI through the SIMD panel kernels (the paper's path), or any
//     other estimator through the generic pair-loop fallback;
//   * a SCHEDULER (SweepOptions): dynamic per-thread tile claiming via
//     parallel_for, or teamed claiming where `team_size` threads share one
//     tile's panels round-robin; plus an optional per-tile resume filter
//     backed by the checkpoint journal;
//   * a SINK: what happens to each pair — thresholded edge buffers
//     (EdgeSink), a dense matrix (DenseSink), or thresholded edges
//     journaled per tile with throttled progress (JournalSink).
//
// B-spline pair values are bit-identical across every configuration: panel
// results equal per-pair joint_entropy with the matching kernel
// (test-enforced), so regrouping tiles or splitting panels across a team —
// or routing through the PairStatistic interface — cannot change bits.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/checkpoint.h"
#include "core/config.h"
#include "core/pair_statistic.h"
#include "core/tile.h"
#include "device/perf_model.h"
#include "graph/network.h"
#include "mi/bspline_mi.h"
#include "parallel/affinity.h"
#include "parallel/barrier.h"
#include "parallel/parallel_for.h"
#include "parallel/topology.h"
#include "parallel/reduction.h"
#include "parallel/thread_pool.h"
#include "util/aligned.h"
#include "util/contracts.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge {

struct EngineStats;

// --- tile plan --------------------------------------------------------------

/// An ordered set of tiles plus the pair total they cover. The enumeration
/// order is the tile index space the scheduler and the checkpoint journal
/// agree on (triangular(0, n, T) reproduces TileSet(n, T) exactly, so
/// existing journals stay valid).
class SweepPlan {
 public:
  /// Upper triangle of [gene_begin, gene_end), T x T blocks.
  static SweepPlan triangular(std::size_t gene_begin, std::size_t gene_end,
                              std::size_t tile_size);

  /// Full [row_begin, row_end) x [col_begin, col_end) rectangle; the row
  /// range must sit entirely below the column range (ring cross blocks).
  static SweepPlan rectangular(std::size_t row_begin, std::size_t row_end,
                               std::size_t col_begin, std::size_t col_end,
                               std::size_t tile_size);

  /// An explicit tile list, in the given order. The query planner uses
  /// this to sweep just the tiles a pair batch touches — each tile carved
  /// with the same boundaries triangular() would produce, so the per-pair
  /// panel grouping (and therefore every bit of every MI value) matches
  /// the batch pass that swept the whole triangle.
  static SweepPlan from_tiles(std::vector<Tile> tiles);

  std::size_t count() const { return tiles_.size(); }
  const Tile& tile(std::size_t index) const {
    TINGE_EXPECTS(index < tiles_.size());
    return tiles_[index];
  }
  /// Sum of pair_count over all tiles.
  std::size_t total_pairs() const { return total_pairs_; }

 private:
  std::vector<Tile> tiles_;
  std::size_t total_pairs_ = 0;
};

// --- kernel plan ------------------------------------------------------------
//
// PanelPlan itself lives in core/pair_statistic.h (each statistic resolves
// its own plan); the measured B-spline resolution stays here.

/// Resolves kernel, panel width and memory-side knobs for a B-spline pass:
/// config Auto goes through the one-shot microbenchmarks here (not in the
/// hot loop), and the stats report the variant that actually ran. This is
/// what BsplineStat::plan delegates to.
PanelPlan plan_panels(const BsplineMi& estimator, const TingeConfig& config);

// --- scheduler --------------------------------------------------------------

/// Thrown by run_sweep when SweepOptions::cancel flips mid-pass. Tiles
/// journaled before the abort stay valid — a checkpointed pass resumes
/// from them — so cancellation loses at most the tiles in flight.
class SweepAborted : public std::runtime_error {
 public:
  SweepAborted()
      : std::runtime_error("sweep aborted: cancellation requested") {}
};

/// NUMA placement of one sweep: which memory node prefers which tiles and
/// where each pool context runs. Built once per pass by
/// make_numa_tile_plan and handed to run_sweep via SweepOptions::numa;
/// with it set (and > 1 node) the flat scheduler swaps its single shared
/// tile counter for per-node queues — each context drains its own node's
/// tiles first (whose row genes were first-touched on that node, see
/// StagedRankMatrix::fill_rows) and steals from other nodes round-robin by
/// hop distance only when its queue runs dry. Tile values are unchanged;
/// only the claiming order is.
struct NumaTilePlan {
  int nodes = 1;
  std::vector<int> tile_node;  ///< per plan tile: node owning its row genes
  /// Per pool context: assumed home node under a contiguous block split of
  /// the contexts across nodes. Only a fallback — pool contexts are handed
  /// out in wake order and may not be pinned at all, so when cpu_node is
  /// populated each context resolves its real home from the CPU it is
  /// running on at sweep time instead.
  std::vector<int> thread_node;
  /// cpu_node[cpu] = node of OS CPU `cpu` (copied from the detected
  /// NumaLayout when the caller supplies one); empty when detection was
  /// unavailable or the plan uses synthetic nodes, in which case
  /// thread_node decides.
  std::vector<int> cpu_node;
};

/// Node owning gene g under the contiguous block partition both the staged
/// first-touch fill and the tile plan use: block boundaries at
/// g * nodes / n_genes.
inline int numa_node_of_gene(std::size_t g, std::size_t n_genes, int nodes) {
  if (n_genes == 0 || nodes <= 1) return 0;
  const std::size_t node =
      g * static_cast<std::size_t>(nodes) / n_genes;
  return static_cast<int>(
      std::min(node, static_cast<std::size_t>(nodes - 1)));
}

/// Builds the per-pass NUMA plan: tiles are attributed to the node of
/// their first row gene. Pass the detected `layout` so sweep contexts can
/// resolve their home node from the CPU they actually run on; without it
/// (or when layout->nodes != nodes — synthetic test plans) contexts fall
/// back to a contiguous block split of tids across nodes, which matches a
/// block-cyclic pinning of the pool and is only a heuristic otherwise.
NumaTilePlan make_numa_tile_plan(const SweepPlan& plan, std::size_t n_genes,
                                 int nodes, int threads,
                                 const par::NumaLayout* layout = nullptr);

// --- heterogeneous executor lanes (DESIGN.md §6i) ---------------------------

/// Shared tile ledger of the heterogeneous lane scheduler. Mirrors the
/// cluster LeaseLedger's conservation discipline — tiles leave an
/// LPT-ordered ready queue (descending pair count, ties by ascending
/// index) in batches, every tile is claimed exactly once, and
/// granted = completed + outstanding at every step — but is internally
/// synchronized: worker contexts call next()/complete() directly instead
/// of routing requests through a master rank. Refill batches shrink
/// geometrically as the ready queue drains (bounding end-game imbalance),
/// and a lane whose pending queue and the ready list are both dry steals
/// the back half of the richest other lane's pending tiles — so a
/// mispredicted seed fraction can cost latency, never completion.
///
/// Seed grants are issued upfront (in the constructor) and a steal always
/// leaves the victim's front tile in place, so every lane is guaranteed at
/// least one tile when the plan has enough to go around — the calibration
/// and the manifest's measured partition get an observation from every
/// lane even if its contexts wake late. Worst-case cost: one straggler
/// tile per lane.
class LaneLedger {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// `seed_fractions` sizes each lane's upfront grant — half its predicted
  /// share, the rest staying in the ready queue to absorb prediction error
  /// (empty = equal shares). Tiles with a non-zero `skip` entry (resumed
  /// from a checkpoint) never enter the ready queue.
  LaneLedger(const SweepPlan& plan, std::size_t n_lanes,
             const std::vector<double>& seed_fractions = {},
             const std::vector<char>* skip = nullptr);

  /// Claims the next tile for a context of `lane`: the lane's pending
  /// grant first, else a fresh batch from the ready queue, else a steal
  /// from another lane. npos = the sweep is drained.
  std::size_t next(int lane);

  /// Marks a claimed tile finished.
  void complete(int lane, std::size_t tile);

  // Conservation accounting. At any instant
  //   tiles_granted == tiles_claimed == tiles_completed + outstanding
  // up to tiles still sitting in pending queues (granted, unclaimed), and
  // after the sweep all four equal tiles_total.
  std::size_t tiles_total() const;      ///< plan tiles minus skipped
  std::size_t tiles_granted() const;    ///< left the ready queue
  std::size_t tiles_claimed() const;    ///< returned by next()
  std::size_t tiles_completed() const;
  std::size_t outstanding() const;      ///< claimed, not yet completed
  std::size_t leases_granted() const;   ///< grant batches issued
  std::size_t steals() const;           ///< tiles moved between lanes
  std::uint64_t lane_tiles(int lane) const;  ///< completions per lane
  std::size_t lane_pending(int lane) const;  ///< granted, unclaimed tiles
  bool drained() const;  ///< ready queue and every pending queue empty
  bool done() const;     ///< every non-skipped tile completed

 private:
  void grant_locked(std::size_t lane);
  void steal_locked(std::size_t lane);

  mutable std::mutex mutex_;
  const SweepPlan* plan_;
  std::vector<std::size_t> ready_;  ///< LPT order; head_ is the cursor
  std::size_t head_ = 0;
  std::vector<std::vector<std::size_t>> pending_;  ///< per lane, FIFO
  std::vector<std::uint64_t> lane_tiles_;
  std::size_t claimed_ = 0;
  std::size_t completed_ = 0;
  std::size_t leases_ = 0;
  std::size_t steals_ = 0;
};

/// One executor lane: a contiguous block of pool contexts sweeping with its
/// own resolved kernel plan — e.g. the AVX-512 panel lane vs the scalar
/// lane as stand-ins for the paper's Xeon/Phi split. Kernel variants are
/// bit-identical, so lanes change which context computes a pair, never its
/// value.
struct SweepLane {
  PanelPlan panels;
  int begin_context = 0;  ///< first pool context of the lane (inclusive)
  int end_context = 0;    ///< one past the lane's last pool context
  double predicted_fraction = 0.0;  ///< perf-model share seeding the ledger
  std::string label;                ///< "simd:6"-style, for stats/metrics

  int threads() const { return end_context - begin_context; }
};

/// The lane scheduler's inputs: lanes covering contexts [0, threads)
/// contiguously, the per-pair workload shape (samples/order/bins, pairs
/// left at 1) for converting tiles to modeled FLOPs, and an optional
/// PerfModel receiving per-tile observations (live recalibration;
/// PerfModel::observe is internally locked). run_sweep writes the ledger's
/// conservation counters back into the mutable fields after the pass.
struct LanePlan {
  std::vector<SweepLane> lanes;
  MiWorkload pair_shape;
  PerfModel* model = nullptr;

  /// Filled by run_sweep: the lane ledger's outcome for this pass.
  mutable std::size_t leases_granted = 0;
  mutable std::size_t steals = 0;

  int lane_of_context(int tid) const {
    for (std::size_t l = 0; l + 1 < lanes.size(); ++l)
      if (tid < lanes[l].end_context) return static_cast<int>(l);
    return static_cast<int>(lanes.size()) - 1;
  }
};

/// How run_sweep distributes tiles over contexts.
struct SweepOptions {
  /// Pool contexts participating. 1 runs inline on the caller (the pool may
  /// then be null — the ring sweep has one thread per rank and no pool).
  int threads = 1;
  par::Schedule schedule = par::Schedule::Dynamic;
  /// 1 = flat dynamic claiming (one tile per thread). > 1 = teamed: each
  /// group of team_size consecutive contexts claims one tile together and
  /// splits its panels round-robin (the Phi's threads-of-a-core mode).
  /// Must divide `threads`.
  int team_size = 1;
  /// Optional resume filter, one entry per plan tile; non-zero entries are
  /// skipped (already journaled by a previous attempt).
  const std::vector<char>* skip = nullptr;
  /// Optional cancellation flag, polled between tiles: once it reads true
  /// the pass stops claiming tiles and throws SweepAborted. How a worker
  /// that learned of a peer failure (or caught SIGTERM) abandons a doomed
  /// multi-minute sweep instead of computing to the bitter end.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional NUMA placement (flat scheduler only). Must outlive the
  /// sweep. Combining it with team_size > 1 or `lanes` is a
  /// ContractViolation — see the scheduler-precedence note on
  /// TingeConfig::numa.
  const NumaTilePlan* numa = nullptr;
  /// Optional heterogeneous lane scheduler (flat mode only; team_size must
  /// be 1 and `numa` null). The plan's lanes must cover exactly
  /// [0, threads). Must outlive the sweep.
  const LanePlan* lanes = nullptr;
};

/// Per-context tally of one pass. Plain counters on per-thread slots: the
/// observability layer costs one integer bump per tile/panel/pair in
/// thread-private cache lines, nothing shared.
struct SweepCounters {
  std::uint64_t tiles = 0;   ///< tiles this context completed (team leader)
  std::uint64_t pairs = 0;   ///< pairs this context computed
  std::uint64_t panels = 0;  ///< panel sweeps this context ran
  /// NUMA scheduler only (zero elsewhere): tiles claimed from the
  /// context's own node's queue vs. stolen from another node's.
  std::uint64_t tiles_local = 0;
  std::uint64_t tiles_stolen = 0;
  /// Per-tile wall-time sampling (every scheduler; teamed passes time on
  /// the leader, claim to post-merge). Sum/max feed the lane calibration;
  /// the raw samples give the pass-level p50/p95 straggler diagnosis.
  std::uint64_t tiles_timed = 0;
  double tile_seconds_sum = 0.0;
  double tile_seconds_max = 0.0;
  std::vector<float> tile_seconds;  ///< one sample per timed tile
};

// --- sinks ------------------------------------------------------------------
//
// A Sink receives the executor's lifecycle calls:
//   tile_begin(tid, t)          every participating context, before its
//                               share of tile t (skipped tiles excluded);
//   pair(tid, i, j, mi)         once per pair, from the computing context;
//   tile_end(leader_tid, t, w)  once per tile after all w team members'
//                               contributions are complete and visible
//                               (w == 1 outside teamed mode). The members'
//                               slots are leader_tid .. leader_tid + w - 1.

/// Thresholded edge emitter: pairs at or above `threshold` accumulate into
/// per-context buffers, drained in tid order after the pass.
class EdgeSink {
 public:
  EdgeSink(double threshold, int contexts)
      : threshold_(static_cast<float>(threshold)), buffers_(contexts) {}

  void tile_begin(int /*tid*/, std::size_t /*t*/) {}
  void pair(int tid, std::size_t i, std::size_t j, double mi) {
    const float mi_f = static_cast<float>(mi);
    if (mi_f >= threshold_) {
      buffers_.local(tid).push_back(Edge{static_cast<std::uint32_t>(i),
                                         static_cast<std::uint32_t>(j), mi_f});
    }
  }
  void tile_end(int /*tid*/, std::size_t /*t*/, int /*team_width*/) {}

  /// Appends every context's surviving edges to `network` in tid order.
  void drain_into(GeneNetwork& network) {
    for (int tid = 0; tid < buffers_.size(); ++tid)
      network.add_edges(buffers_.local(tid));
  }

  /// All surviving edges concatenated in tid order (the ring sweep keeps
  /// one flat buffer per rank across several run_sweep calls).
  std::vector<Edge> take_all() {
    std::vector<Edge> all;
    for (int tid = 0; tid < buffers_.size(); ++tid) {
      auto& buffer = buffers_.local(tid);
      all.insert(all.end(), buffer.begin(), buffer.end());
      buffer.clear();
    }
    return all;
  }

 private:
  float threshold_;
  par::PerThread<std::vector<Edge>> buffers_;
};

/// Dense matrix writer: every pair lands in both triangles of the row-major
/// n x n matrix. No thresholding, no edges.
class DenseSink {
 public:
  DenseSink(float* matrix, std::size_t n) : matrix_(matrix), n_(n) {}

  void tile_begin(int /*tid*/, std::size_t /*t*/) {}
  void pair(int /*tid*/, std::size_t i, std::size_t j, double mi) {
    const float mi_f = static_cast<float>(mi);
    matrix_[i * n_ + j] = mi_f;
    matrix_[j * n_ + i] = mi_f;
  }
  void tile_end(int /*tid*/, std::size_t /*t*/, int /*team_width*/) {}

 private:
  float* matrix_;
  std::size_t n_;
};

/// Checkpointing edge emitter: thresholded edges buffer per context during
/// a tile, tile_end journals the whole tile and runs the throttled progress
/// callback. Safe under both schedulers — tile_end fires on the team leader
/// only after every member's buffer is complete and visible.
class JournalSink {
 public:
  struct Progress {
    /// progress(done, total), serialized across workers; an exception
    /// thrown from it aborts the pass (how failure injection tests resume).
    std::function<void(std::size_t, std::size_t)> callback;
    std::size_t interval = 1;      ///< min completed tiles between reports
    std::size_t total = 0;         ///< plan tile count
    std::size_t already_done = 0;  ///< tiles replayed from the journal
  };

  JournalSink(CheckpointWriter& writer, double threshold, int contexts,
              Progress progress)
      : writer_(writer),
        threshold_(static_cast<float>(threshold)),
        buffers_(contexts),
        progress_(std::move(progress)),
        last_reported_(progress_.already_done),
        tiles_done_(progress_.already_done) {}

  void tile_begin(int tid, std::size_t /*t*/) { buffers_.local(tid).clear(); }
  void pair(int tid, std::size_t i, std::size_t j, double mi) {
    const float mi_f = static_cast<float>(mi);
    if (mi_f >= threshold_) {
      buffers_.local(tid).push_back(Edge{static_cast<std::uint32_t>(i),
                                         static_cast<std::uint32_t>(j), mi_f});
    }
  }
  void tile_end(int tid, std::size_t t, int team_width);

 private:
  CheckpointWriter& writer_;
  float threshold_;
  par::PerThread<std::vector<Edge>> buffers_;

  // Progress throttle: the callback serializes workers behind a mutex, so
  // at whole-genome tile counts it is invoked at most once per `interval`
  // tiles or ~100 ms (whichever comes first); the final tile always
  // reports, and interval == 1 restores exact per-tile callbacks.
  Progress progress_;
  Stopwatch watch_;
  std::mutex progress_mutex_;
  std::atomic<std::size_t> last_reported_;
  std::atomic<std::int64_t> last_report_us_{0};
  std::atomic<std::size_t> tiles_done_;
};

// --- resume state -----------------------------------------------------------

/// Tiles already journaled by a previous attempt, mapped onto a plan.
struct ResumeState {
  std::vector<char> done;          ///< per plan tile; 1 = replayed
  std::vector<TileRecord> records; ///< the replayed records (first wins)
  std::size_t pairs_resumed = 0;   ///< pair_count over the replayed tiles
};

/// Loads the checkpoint at `path` if it exists and matches `signature`;
/// deduplicates records (first occurrence wins) and drops indices outside
/// the plan. Returns an all-clear state when no matching checkpoint exists
/// — except when the journal differs from `signature` *only* in the
/// estimator, which is almost certainly an operator error (same data, same
/// tiling, wrong --estimator): that throws ContractViolation naming both
/// estimators instead of silently recomputing.
ResumeState load_resume_state(const std::string& path,
                              const RunSignature& signature,
                              const SweepPlan& plan);

// --- stats finalizer --------------------------------------------------------

/// The one place every engine-facing pass reports through: fills
/// EngineStats (when requested) and publishes the identical numbers as
/// deltas into the engine.* instruments of the process-wide registry —
/// including the tile-latency percentiles from the per-context samples
/// and, when `lanes` is given, the per-lane partition outcome
/// (engine.lane.<i>.* metrics, EngineStats::lanes).
void finalize_engine_pass(EngineStats* stats, const PanelPlan& plan,
                          std::size_t plan_tiles, double seconds,
                          std::span<const SweepCounters> per_thread,
                          std::size_t edges_emitted, std::size_t tiles_resumed,
                          std::size_t pairs_resumed,
                          const LanePlan* lanes = nullptr);

// --- the executor -----------------------------------------------------------

namespace detail {

/// Sweeps one tile's row panels through the pair statistic, emitting each
/// pair's score to the sink. `phase`/`stride` select this context's share
/// of the panels (0/1 = all of them; member/team_size in teamed mode —
/// panels, not pairs, are the unit of splitting so each member runs whole
/// row-reuse sweeps).
template <typename RowSource, typename Sink>
void sweep_tile(const PairStatistic& estimator, RowSource& row,
                const Tile& tile, const PanelPlan& plan, std::size_t phase,
                std::size_t stride, PairScratch& scratch,
                SweepCounters& counters, Sink& sink, int tid) {
  // Rank element width follows the row source: uint32 classic rows or
  // uint16 staged rows (bit-identical — the B-spline kernels index the
  // same table rows, the generic fallback widens losslessly). Overload
  // resolution on eval_panel picks the matching variant.
  using RankT = std::remove_cv_t<
      std::remove_pointer_t<decltype(row(std::size_t{0}))>>;
  const PanelOptions options{plan.kernel, plan.prefetch, plan.packed};
  const RankT* ry[kMaxPanelWidth];
  double mi[kMaxPanelWidth];
  std::size_t panel_index = 0;
  for_each_row_panel(
      tile, static_cast<std::size_t>(plan.width),
      [&](std::size_t i, std::size_t j0, std::size_t width) {
        if (stride > 1 && panel_index++ % stride != phase) return;
        for (std::size_t p = 0; p < width; ++p) ry[p] = row(j0 + p);
        estimator.eval_panel(row(i), ry, width, i, j0, options, scratch, mi);
        ++counters.panels;
        counters.pairs += width;
        for (std::size_t p = 0; p < width; ++p) sink.pair(tid, i, j0 + p, mi[p]);
      });
}

/// One sweep context's working state: the statistic's per-context scratch
/// plus this context's counter slot. The single place every scheduler body
/// allocates from, so scratch construction policy lives here, once.
struct SweepContext {
  std::unique_ptr<PairScratch> scratch;
  SweepCounters* counters;
};

inline SweepContext make_sweep_context(const PairStatistic& estimator,
                                       par::PerThread<SweepCounters>& state,
                                       int tid) {
  return SweepContext{estimator.make_scratch(), &state.local(tid)};
}

/// Records one tile's wall time into the context's counters (count, sum,
/// max, raw sample). One push_back per tile — tiles are ms-scale and the
/// slots are thread-private, so the sampling cost is noise.
inline void record_tile_seconds(SweepCounters& counters, double seconds) {
  ++counters.tiles_timed;
  counters.tile_seconds_sum += seconds;
  if (seconds > counters.tile_seconds_max)
    counters.tile_seconds_max = seconds;
  counters.tile_seconds.push_back(static_cast<float>(seconds));
}

}  // namespace detail

/// Runs the sweep described by `plan` with the scheduler in `options`,
/// feeding every pair's score to `sink`. `row(g)` must return the rank
/// profile of gene g (a const std::uint32_t* or std::uint16_t* of at least
/// n_samples entries) and be safe to call concurrently. `panels` is the
/// statistic's resolved plan (estimator.plan(config)). `pool` may be null
/// only for the inline case (threads == 1 and team_size == 1). Returns the
/// per-context counters (one slot per participating context).
template <typename RowSource, typename Sink>
std::vector<SweepCounters> run_sweep(const SweepPlan& plan,
                                     const PairStatistic& estimator,
                                     RowSource&& row, const PanelPlan& panels,
                                     par::ThreadPool* pool,
                                     const SweepOptions& options, Sink& sink) {
  TINGE_EXPECTS(options.threads >= 1);
  TINGE_EXPECTS(options.team_size >= 1);
  TINGE_EXPECTS(options.skip == nullptr ||
                options.skip->size() == plan.count());
  // Scheduler-precedence guards (see TingeConfig::numa): a NUMA plan or a
  // lane plan combined with teamed claiming used to be a silent no-op —
  // now the caller hears about the conflict instead of losing a knob.
  if (options.numa != nullptr && options.team_size > 1) {
    throw ContractViolation(strprintf(
        "sweep: a NUMA tile plan requires the flat scheduler but "
        "team_size is %d; teamed claiming would silently ignore the plan",
        options.team_size));
  }
  if (options.lanes != nullptr && options.team_size > 1) {
    throw ContractViolation(strprintf(
        "sweep: heterogeneous lanes require the flat scheduler but "
        "team_size is %d",
        options.team_size));
  }
  if (options.lanes != nullptr && options.numa != nullptr) {
    throw ContractViolation(
        "sweep: heterogeneous lanes and the NUMA node-queue scheduler "
        "both replace the flat tile queue; enable at most one");
  }
  const int contexts = options.threads;
  par::PerThread<SweepCounters> state(contexts);

  if (options.team_size <= 1 && options.lanes != nullptr &&
      options.lanes->lanes.size() > 1 && contexts > 1 && plan.count() > 1) {
    // Heterogeneous lane scheduler: each lane owns a contiguous context
    // block and its own kernel plan; tiles flow through the shared
    // LPT-ordered LaneLedger — perf-model-seeded batches first, then
    // demand-driven refills and cross-lane steals, so whichever lane
    // drains first keeps the pool busy regardless of the model's accuracy.
    // Kernel variants are bit-identical and the network finalizer sorts,
    // so lane composition cannot change the result.
    TINGE_EXPECTS(pool != nullptr);
    const LanePlan& lane_plan = *options.lanes;
    TINGE_EXPECTS(lane_plan.lanes.front().begin_context == 0);
    TINGE_EXPECTS(lane_plan.lanes.back().end_context == contexts);
    std::vector<double> fractions;
    fractions.reserve(lane_plan.lanes.size());
    for (const SweepLane& lane : lane_plan.lanes)
      fractions.push_back(lane.predicted_fraction);
    LaneLedger ledger(plan, lane_plan.lanes.size(), fractions, options.skip);

    pool->run(contexts, [&](int tid, int /*width*/) {
      const int lane_index = lane_plan.lane_of_context(tid);
      const SweepLane& lane =
          lane_plan.lanes[static_cast<std::size_t>(lane_index)];
      const detail::SweepContext context =
          detail::make_sweep_context(estimator, state, tid);
      SweepCounters& local = *context.counters;
      Stopwatch tile_watch;
      while (true) {
        const std::size_t t = ledger.next(lane_index);
        if (t == LaneLedger::npos) break;
        if (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed))
          throw SweepAborted();
        tile_watch.reset();
        sink.tile_begin(tid, t);
        ++local.tiles;
        detail::sweep_tile(estimator, row, plan.tile(t), lane.panels, 0, 1,
                           *context.scratch, local, sink, tid);
        sink.tile_end(tid, t, 1);
        const double elapsed = tile_watch.seconds();
        detail::record_tile_seconds(local, elapsed);
        ledger.complete(lane_index, t);
        if (lane_plan.model != nullptr) {
          MiWorkload tile_work = lane_plan.pair_shape;
          tile_work.pairs = plan.tile(t).pair_count();
          lane_plan.model->observe(lane_index, tile_work, elapsed);
        }
      }
    });
    lane_plan.leases_granted = ledger.leases_granted();
    lane_plan.steals = ledger.steals();
  } else if (options.team_size <= 1) {
    const bool numa_scheduling = options.numa != nullptr &&
                                 options.numa->nodes > 1 && contexts > 1 &&
                                 plan.count() > 1;
    if (numa_scheduling) {
      // NUMA node-queue scheduler: one tile queue per memory node, one
      // shared cursor per queue. A context drains the queue of its own
      // node first (tiles whose row genes are resident there), then steals
      // from the other nodes in hop order. Work-conserving — every tile is
      // claimed exactly once — and tile values are scheduler-independent,
      // so results stay bit-identical to the shared-queue path.
      TINGE_EXPECTS(pool != nullptr);
      const NumaTilePlan& numa = *options.numa;
      TINGE_EXPECTS(numa.tile_node.size() == plan.count());
      TINGE_EXPECTS(numa.thread_node.size() >=
                    static_cast<std::size_t>(contexts));
      const int nodes = numa.nodes;
      std::vector<std::vector<std::size_t>> queues(
          static_cast<std::size_t>(nodes));
      for (std::size_t t = 0; t < plan.count(); ++t) {
        int node = numa.tile_node[t];
        if (node < 0 || node >= nodes) node = 0;
        queues[static_cast<std::size_t>(node)].push_back(t);
      }
      struct alignas(kSimdAlignment) NodeCursor {
        std::atomic<std::size_t> next{0};
      };
      std::vector<NodeCursor> cursors(static_cast<std::size_t>(nodes));

      pool->run(contexts, [&](int tid, int /*width*/) {
        const detail::SweepContext context =
            detail::make_sweep_context(estimator, state, tid);
        SweepCounters& local = *context.counters;
        // Home node: prefer the node of the CPU this context is actually
        // running on (tids are claimed in wake order, so the plan's
        // tid-block mapping cannot know it); fall back to that mapping
        // when the plan has no cpu table or the query is unsupported.
        int home = numa.thread_node[static_cast<std::size_t>(tid)];
        const int cpu = par::current_cpu();
        if (cpu >= 0 && static_cast<std::size_t>(cpu) < numa.cpu_node.size())
          home = numa.cpu_node[static_cast<std::size_t>(cpu)];
        if (home < 0 || home >= nodes) home = 0;
        Stopwatch tile_watch;
        for (int hop = 0; hop < nodes; ++hop) {
          const int node = (home + hop) % nodes;
          const auto& queue = queues[static_cast<std::size_t>(node)];
          auto& cursor = cursors[static_cast<std::size_t>(node)].next;
          while (true) {
            const std::size_t qi =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (qi >= queue.size()) break;
            const std::size_t t = queue[qi];
            if (options.cancel != nullptr &&
                options.cancel->load(std::memory_order_relaxed))
              throw SweepAborted();
            if (options.skip != nullptr && (*options.skip)[t]) continue;
            tile_watch.reset();
            sink.tile_begin(tid, t);
            ++local.tiles;
            if (hop == 0) {
              ++local.tiles_local;
            } else {
              ++local.tiles_stolen;
            }
            detail::sweep_tile(estimator, row, plan.tile(t), panels, 0, 1,
                               *context.scratch, local, sink, tid);
            sink.tile_end(tid, t, 1);
            detail::record_tile_seconds(local, tile_watch.seconds());
          }
        }
      });
    } else {
      // Flat scheduler: tiles are the unit of dynamic claiming, exactly as
      // parallel_for distributes them (grain 1).
      const auto body = [&](std::size_t tile_begin, std::size_t tile_end,
                            int tid) {
        const detail::SweepContext context =
            detail::make_sweep_context(estimator, state, tid);
        SweepCounters& local = *context.counters;
        Stopwatch tile_watch;
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          if (options.cancel != nullptr &&
              options.cancel->load(std::memory_order_relaxed))
            throw SweepAborted();
          if (options.skip != nullptr && (*options.skip)[t]) continue;
          tile_watch.reset();
          sink.tile_begin(tid, t);
          ++local.tiles;
          detail::sweep_tile(estimator, row, plan.tile(t), panels, 0, 1,
                             *context.scratch, local, sink, tid);
          sink.tile_end(tid, t, 1);
          detail::record_tile_seconds(local, tile_watch.seconds());
        }
      };
      if (contexts == 1 || plan.count() <= 1) {
        body(0, plan.count(), 0);
      } else {
        TINGE_EXPECTS(pool != nullptr);
        par::parallel_for(*pool, contexts, 0, plan.count(), 1,
                          options.schedule, body);
      }
    }
  } else {
    if (contexts % options.team_size != 0) {
      throw ContractViolation(strprintf(
          "teamed sweep: team_size %d does not divide the %d-thread pool "
          "width; choose a team size that tiles the pool exactly",
          options.team_size, contexts));
    }
    TINGE_EXPECTS(pool != nullptr);
    const int team_size = options.team_size;
    const int n_teams = contexts / team_size;

    // Per-team coordination: the leader claims the next tile from the
    // global counter; a team barrier publishes it to the members; every
    // member sweeps its round-robin share of the tile's panels. The second
    // barrier keeps members in lock-step with the leader's next claim (the
    // leader must not overwrite team.tile early) and makes every member's
    // sink contributions visible before tile_end runs on the leader.
    std::atomic<std::size_t> next_tile{0};
    struct alignas(kSimdAlignment) TeamSlot {
      std::size_t tile = 0;
      std::unique_ptr<par::SpinBarrier> barrier;
    };
    std::vector<TeamSlot> teams(static_cast<std::size_t>(n_teams));
    for (auto& team : teams)
      team.barrier = std::make_unique<par::SpinBarrier>(team_size);

    // A sink/progress exception must not strand teammates on a barrier:
    // record the first error, poison the claim counter so every team's
    // next claim terminates the loop, and rethrow after the region.
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::atomic<bool> aborted{false};
    const auto record_error = [&] {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      aborted.store(true, std::memory_order_release);
      next_tile.store(plan.count(), std::memory_order_relaxed);
    };

    pool->run(contexts, [&](int tid, int /*width*/) {
      const int team_id = tid / team_size;
      const int member = tid % team_size;
      TeamSlot& team = teams[static_cast<std::size_t>(team_id)];
      const detail::SweepContext context =
          detail::make_sweep_context(estimator, state, tid);
      SweepCounters& local = *context.counters;
      Stopwatch tile_watch;

      while (true) {
        if (member == 0) {
          // Cancellation rides the same poisoning path as a sink error so
          // teammates drain off their barriers instead of stranding.
          if (options.cancel != nullptr &&
              options.cancel->load(std::memory_order_relaxed) &&
              !aborted.load(std::memory_order_acquire)) {
            try {
              throw SweepAborted();
            } catch (...) {
              record_error();
            }
          }
          team.tile = next_tile.fetch_add(1, std::memory_order_relaxed);
        }
        team.barrier->arrive_and_wait();
        const std::size_t t = team.tile;
        if (t >= plan.count()) break;
        const bool skipped =
            options.skip != nullptr && (*options.skip)[t] != 0;
        if (member == 0 && !skipped) tile_watch.reset();
        if (!skipped) {
          try {
            sink.tile_begin(tid, t);
            // The tile is attributed to the claiming leader in the
            // scheduler counters; panel/pair work to the member running it.
            if (member == 0) ++local.tiles;
            detail::sweep_tile(estimator, row, plan.tile(t), panels,
                               static_cast<std::size_t>(member),
                               static_cast<std::size_t>(team_size),
                               *context.scratch, local, sink, tid);
          } catch (...) {
            record_error();
          }
        }
        team.barrier->arrive_and_wait();
        if (member == 0 && !skipped &&
            !aborted.load(std::memory_order_acquire)) {
          try {
            sink.tile_end(tid, t, team_size);
          } catch (...) {
            record_error();
          }
          // Tile wall time as the team experienced it: claim through the
          // members' barrier and the merged tile_end, on the leader's slot.
          detail::record_tile_seconds(local, tile_watch.seconds());
        }
      }
    });
    if (first_error) std::rethrow_exception(first_error);
  }

  std::vector<SweepCounters> counters(static_cast<std::size_t>(contexts));
  for (int tid = 0; tid < contexts; ++tid)
    counters[static_cast<std::size_t>(tid)] = state.local(tid);
  return counters;
}

}  // namespace tinge
