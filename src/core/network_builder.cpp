#include "core/network_builder.h"

#include <memory>

#include "core/dpi.h"
#include "parallel/thread_pool.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge {

NetworkBuilder::NetworkBuilder(TingeConfig config) : config_(config) {
  config_.validate();
}

void NetworkBuilder::log(const std::string& message) const {
  if (logger_) logger_(message);
}

BuildResult NetworkBuilder::build(const ExpressionMatrix& expression) const {
  return run(expression.clone());
}

BuildResult NetworkBuilder::build(ExpressionMatrix&& expression) const {
  return run(std::move(expression));
}

BuildResult NetworkBuilder::run(ExpressionMatrix working) const {
  const Stopwatch total_watch;
  BuildResult result;
  result.genes_in = working.n_genes();

  const int pool_threads = config_.threads > 0
                               ? config_.threads
                               : par::detect_host_topology().total_threads();
  par::ThreadPool pool(pool_threads);

  // Stage 1: preprocessing -------------------------------------------------
  RankedMatrix ranked;
  {
    const ScopedAccumulator timer(result.times.preprocess);
    result.imputed_cells = impute_missing_with_median(working);
    FilterResult filtered = filter_genes(working, config_.filter);
    result.genes_used = filtered.matrix.n_genes();
    log(strprintf("preprocess: %zu/%zu genes kept (%zu low-variance, %zu "
                  "missing dropped), %zu cells imputed",
                  result.genes_used, result.genes_in,
                  filtered.dropped_low_variance, filtered.dropped_missing,
                  result.imputed_cells));
    TINGE_EXPECTS(filtered.matrix.n_genes() >= 2);
    ranked = RankedMatrix(filtered.matrix);
  }

  // Stage 2: shared B-spline weight table -----------------------------------
  std::unique_ptr<BsplineMi> estimator;
  {
    const ScopedAccumulator timer(result.times.weight_table);
    estimator = std::make_unique<BsplineMi>(config_.bins, config_.spline_order,
                                            ranked.n_samples());
    result.marginal_entropy = estimator->marginal_entropy();
    log(strprintf("weight table: b=%d k=%d m=%zu, H_marginal=%.4f nats",
                  config_.bins, config_.spline_order, ranked.n_samples(),
                  result.marginal_entropy));
  }

  // Stage 3: universal permutation null -------------------------------------
  {
    const ScopedAccumulator timer(result.times.null_build);
    result.null = std::make_shared<EmpiricalDistribution>(
        build_null_distribution(*estimator, config_.permutations, config_.seed,
                                pool, config_.threads, config_.kernel));
    const EmpiricalDistribution& null = *result.null;
    result.threshold = threshold_for_alpha(null, config_.alpha);
    log(strprintf("null: q=%zu draws, I_alpha(%.2e)=%.5f nats",
                  config_.permutations, config_.alpha, result.threshold));
  }

  // Stage 4: all-pairs MI with thresholding ---------------------------------
  {
    const ScopedAccumulator timer(result.times.mi_pass);
    const MiEngine engine(*estimator, ranked);
    if (config_.checkpoint_path.empty()) {
      result.network = engine.compute_network(result.threshold, config_, pool,
                                              &result.engine);
    } else {
      result.network = engine.compute_network_checkpointed(
          result.threshold, config_, pool, config_.checkpoint_path,
          &result.engine);
    }
    log(strprintf("mi pass: kernel=%s panel=%d, %zu pairs, %zu significant "
                  "edges (%.2f%%)",
                  result.engine.kernel, result.engine.panel_width,
                  result.engine.pairs_computed, result.network.n_edges(),
                  result.engine.pairs_computed > 0
                      ? 100.0 * static_cast<double>(result.network.n_edges()) /
                            static_cast<double>(result.engine.pairs_computed)
                      : 0.0));
  }

  // Stage 5: DPI (optional) --------------------------------------------------
  if (config_.apply_dpi) {
    const ScopedAccumulator timer(result.times.dpi);
    result.network =
        apply_dpi(result.network, config_.dpi_tolerance, &result.dpi_stats);
    log(strprintf("dpi: %zu triangles, %zu edges removed, %zu edges remain",
                  result.dpi_stats.triangles_examined,
                  result.dpi_stats.edges_removed, result.network.n_edges()));
  }

  result.times.total = total_watch.seconds();
  return result;
}

}  // namespace tinge
