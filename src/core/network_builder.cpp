#include "core/network_builder.h"

#include <memory>

#include "core/dpi.h"
#include "parallel/thread_pool.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge {

NetworkBuilder::NetworkBuilder(TingeConfig config) : config_(config) {
  config_.validate();
}

void NetworkBuilder::log(const std::string& message) const {
  if (logger_) logger_(message);
}

BuildResult NetworkBuilder::build(const ExpressionMatrix& expression) const {
  return run(expression.clone());
}

BuildResult NetworkBuilder::build(ExpressionMatrix&& expression) const {
  return run(std::move(expression));
}

BuildResult NetworkBuilder::run(ExpressionMatrix working) const {
  BuildResult result;
  result.genes_in = working.n_genes();
  result.trace = std::make_shared<obs::Trace>();
  obs::Trace& trace = *result.trace;
  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::global().snapshot();

  const int pool_threads = config_.threads > 0
                               ? config_.threads
                               : par::detect_host_topology().total_threads();
  par::ThreadPool pool(pool_threads);

  // Stage 1: preprocessing -------------------------------------------------
  RankedMatrix ranked;
  {
    const obs::TraceSpan span(trace, "preprocess");
    std::size_t dropped_low_variance = 0, dropped_missing = 0;
    {
      const obs::TraceSpan impute_span(trace, "impute");
      result.imputed_cells = impute_missing_with_median(working);
    }
    {
      const obs::TraceSpan filter_span(trace, "filter");
      FilterResult filtered = filter_genes(working, config_.filter);
      result.genes_used = filtered.matrix.n_genes();
      dropped_low_variance = filtered.dropped_low_variance;
      dropped_missing = filtered.dropped_missing;
      TINGE_EXPECTS(filtered.matrix.n_genes() >= 2);
      working = std::move(filtered.matrix);
    }
    {
      const obs::TraceSpan rank_span(trace, "rank");
      ranked = RankedMatrix(working);
    }
    result.samples = ranked.n_samples();
    log(strprintf("preprocess: %zu/%zu genes kept (%zu low-variance, %zu "
                  "missing dropped), %zu cells imputed",
                  result.genes_used, result.genes_in, dropped_low_variance,
                  dropped_missing, result.imputed_cells));
  }

  // Stage 2: shared B-spline weight table -----------------------------------
  std::unique_ptr<BsplineMi> estimator;
  {
    const obs::TraceSpan span(trace, "weight_table");
    estimator = std::make_unique<BsplineMi>(config_.bins, config_.spline_order,
                                            ranked.n_samples());
    result.marginal_entropy = estimator->marginal_entropy();
    log(strprintf("weight table: b=%d k=%d m=%zu, H_marginal=%.4f nats",
                  config_.bins, config_.spline_order, ranked.n_samples(),
                  result.marginal_entropy));
  }

  // Stage 3: universal permutation null -------------------------------------
  {
    const obs::TraceSpan span(trace, "null");
    result.null = std::make_shared<EmpiricalDistribution>(
        build_null_distribution(*estimator, config_.permutations, config_.seed,
                                pool, config_.threads, config_.kernel));
  }
  {
    const obs::TraceSpan span(trace, "threshold");
    result.threshold = threshold_for_alpha(*result.null, config_.alpha);
    obs::MetricsRegistry::global().gauge("null.threshold")
        .set(result.threshold);
    log(strprintf("null: q=%zu draws, I_alpha(%.2e)=%.5f nats",
                  config_.permutations, config_.alpha, result.threshold));
  }

  // Stage 4: all-pairs MI with thresholding ---------------------------------
  {
    const obs::TraceSpan span(trace, "mi_sweep");
    const MiEngine engine(*estimator, ranked);
    if (config_.checkpoint_path.empty()) {
      result.network = engine.compute_network(result.threshold, config_, pool,
                                              &result.engine);
    } else {
      result.network = engine.compute_network_checkpointed(
          result.threshold, config_, pool, config_.checkpoint_path,
          &result.engine);
    }
    log(strprintf("mi pass: kernel=%s panel=%d, %zu pairs, %zu significant "
                  "edges (%.2f%%)",
                  result.engine.kernel, result.engine.panel_width,
                  result.engine.pairs_computed, result.network.n_edges(),
                  result.engine.pairs_computed > 0
                      ? 100.0 * static_cast<double>(result.network.n_edges()) /
                            static_cast<double>(result.engine.pairs_computed)
                      : 0.0));
  }

  // Stage 5: DPI (optional) --------------------------------------------------
  if (config_.apply_dpi) {
    const obs::TraceSpan span(trace, "dpi");
    result.network =
        apply_dpi(result.network, config_.dpi_tolerance, &result.dpi_stats);
    log(strprintf("dpi: %zu triangles, %zu edges removed, %zu edges remain",
                  result.dpi_stats.triangles_examined,
                  result.dpi_stats.edges_removed, result.network.n_edges()));
  }

  result.pool_busy_seconds = pool.busy_seconds_all();
  result.pool_lifetime_seconds = pool.lifetime_seconds();
  trace.finish();
  result.metrics = obs::snapshot_delta(metrics_before,
                                       obs::MetricsRegistry::global().snapshot());

  // Flat StageTimes view over the stage tree, for the benches and tests
  // that predate the trace.
  const obs::SpanNode& root = trace.root();
  result.times.preprocess = obs::span_seconds(root, "preprocess");
  result.times.weight_table = obs::span_seconds(root, "weight_table");
  result.times.null_build =
      obs::span_seconds(root, "null") + obs::span_seconds(root, "threshold");
  result.times.mi_pass = obs::span_seconds(root, "mi_sweep");
  result.times.dpi = obs::span_seconds(root, "dpi");
  result.times.total = root.seconds;
  return result;
}

}  // namespace tinge
