#include "core/network_builder.h"

#include <memory>
#include <utility>

#include "cluster/sharded_pipeline.h"
#include "cluster/transport.h"
#include "parallel/thread_pool.h"
#include "util/timer.h"

namespace tinge {

NetworkBuilder::NetworkBuilder(TingeConfig config) : config_(config) {
  config_.validate();
}

BuildResult NetworkBuilder::build(const ExpressionMatrix& expression) const {
  return run(expression.clone());
}

BuildResult NetworkBuilder::build(ExpressionMatrix&& expression) const {
  return run(std::move(expression));
}

BuildResult NetworkBuilder::run(ExpressionMatrix working) const {
  BuildResult result;
  result.trace = std::make_shared<obs::Trace>();
  obs::Trace& trace = *result.trace;
  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::global().snapshot();

  const int pool_threads = config_.threads > 0
                               ? config_.threads
                               : par::detect_host_topology().total_threads();
  par::ThreadPool pool(pool_threads);

  // The pipeline itself is the 1-rank case of the sharded cluster build,
  // run over the self-loop transport — one orchestration for both the
  // single-process and the distributed paths (DESIGN.md §6d). The hooks
  // graft this run's trace, pool, engine stats and logger onto it.
  const std::unique_ptr<cluster::Transport> transport =
      cluster::make_transport(cluster::TransportKind::InProcess, {});
  cluster::Comm comm(*transport);
  cluster::LocalPipelineHooks hooks;
  hooks.trace = &trace;
  hooks.pool = &pool;
  hooks.engine = &result.engine;
  hooks.log = logger_;
  cluster::ShardedBuildResult sharded =
      cluster::sharded_build(comm, std::move(working), config_, hooks);

  result.network = std::move(sharded.network);
  result.null = std::move(sharded.null);
  result.threshold = sharded.threshold;
  result.marginal_entropy = sharded.marginal_entropy;
  result.genes_in = sharded.genes_in;
  result.genes_used = sharded.genes_used;
  result.samples = sharded.samples;
  result.imputed_cells = sharded.imputed_cells;
  result.dpi_stats = sharded.dpi_stats;
  result.consensus = std::move(sharded.consensus);

  result.pool_busy_seconds = pool.busy_seconds_all();
  result.pool_lifetime_seconds = pool.lifetime_seconds();
  trace.finish();
  result.metrics = obs::snapshot_delta(metrics_before,
                                       obs::MetricsRegistry::global().snapshot());

  // Flat StageTimes view over the stage tree, for the benches and tests
  // that predate the trace.
  const obs::SpanNode& root = trace.root();
  result.times.preprocess = obs::span_seconds(root, "preprocess");
  result.times.weight_table = obs::span_seconds(root, "weight_table");
  result.times.null_build =
      obs::span_seconds(root, "null") + obs::span_seconds(root, "threshold");
  result.times.mi_pass = obs::span_seconds(root, "mi_sweep");
  result.times.dpi = obs::span_seconds(root, "dpi");
  result.times.total = root.seconds;
  return result;
}

}  // namespace tinge
