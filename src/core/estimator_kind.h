// The pair-statistic selector.
//
// Which dependence score run_sweep computes per gene pair is a run-level
// choice (TingeConfig::estimator / --estimator=...). This tiny header only
// names the choices so config.h does not have to pull in the full
// PairStatistic machinery; the concrete estimators live in
// core/pair_statistic.h.
#pragma once

#include <cstdint>
#include <string_view>

namespace tinge {

/// Enumerates the pair statistics the sweep executor can run. The numeric
/// values are persisted in checkpoint journals (RunSignature::estimator) —
/// append new kinds, never renumber.
enum class EstimatorKind : std::uint32_t {
  Bspline = 0,   ///< B-spline MI (TINGe; the paper's estimator, SIMD panels)
  Histogram,     ///< equal-frequency histogram MI
  Ksg,           ///< Kraskov-Stoegbauer-Grassberger kNN MI (KSG-1)
  Pearson,       ///< |Pearson correlation| on raw expression values
  Spearman,      ///< |Spearman correlation| (Pearson on ranks)
  Phi,           ///< phi-mixing coefficient (Singh et al.)
};

/// Stable lower-case name ("bspline", "histogram", ...).
const char* estimator_name(EstimatorKind kind);

/// Parses an --estimator value. Throws std::invalid_argument naming the
/// accepted spellings on anything unrecognized.
EstimatorKind parse_estimator(std::string_view name);

}  // namespace tinge
