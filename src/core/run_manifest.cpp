#include "core/run_manifest.h"

#include <cstdint>

#include "obs/manifest.h"

namespace tinge {

namespace {

obs::Json u64_array(const std::vector<std::uint64_t>& values) {
  obs::Json array = obs::Json::array();
  for (const std::uint64_t v : values) array.push_back(obs::Json(v));
  return array;
}

obs::Json f64_array(const std::vector<double>& values) {
  obs::Json array = obs::Json::array();
  for (const double v : values) array.push_back(obs::Json(v));
  return array;
}

obs::Json i32_array(const std::vector<int>& values) {
  obs::Json array = obs::Json::array();
  for (const int v : values) array.push_back(obs::Json(v));
  return array;
}

}  // namespace

obs::Json config_to_json(const TingeConfig& config) {
  obs::Json json = obs::Json::object();
  json["estimator"] = obs::Json(std::string(estimator_name(config.estimator)));
  json["consensus_resamples"] = obs::Json(config.consensus_resamples);
  json["consensus_estimators"] = obs::Json(config.consensus_estimators);
  json["consensus_min_frequency"] =
      obs::Json(config.consensus_min_frequency);
  json["bins"] = obs::Json(config.bins);
  json["spline_order"] = obs::Json(config.spline_order);
  json["alpha"] = obs::Json(config.alpha);
  json["permutations"] = obs::Json(config.permutations);
  json["tile_size"] = obs::Json(config.tile_size);
  json["threads"] = obs::Json(config.threads);
  json["team_size"] = obs::Json(config.team_size);
  json["kernel"] = obs::Json(std::string(kernel_name(config.kernel)));
  json["schedule"] = obs::Json(std::string(par::schedule_name(config.schedule)));
  json["panel_width"] = obs::Json(config.panel_width);
  json["stage_ranks"] = obs::Json(config.stage_ranks);
  json["packed_table"] = obs::Json(std::string(knob_mode_name(config.packed_table)));
  json["prefetch"] = obs::Json(std::string(knob_mode_name(config.prefetch)));
  json["numa"] = obs::Json(std::string(knob_mode_name(config.numa)));
  json["hetero"] = obs::Json(config.hetero);
  json["seed"] = obs::Json(config.seed);
  json["checkpoint_path"] = obs::Json(config.checkpoint_path);
  json["apply_dpi"] = obs::Json(config.apply_dpi);
  json["dpi_tolerance"] = obs::Json(config.dpi_tolerance);
  json["cluster_ranks"] = obs::Json(config.cluster_ranks);
  json["cluster_transport"] = obs::Json(config.cluster_transport);
  json["cluster_balance"] = obs::Json(config.cluster_balance);
  return json;
}

obs::Json cluster_to_json(const ClusterManifest& cluster) {
  obs::Json json = obs::Json::object();
  json["transport"] = obs::Json(cluster.transport);
  json["balance"] = obs::Json(cluster.balance);
  json["ranks"] = obs::Json(cluster.ranks);
  json["bytes_transferred"] = obs::Json(cluster.bytes_transferred);
  json["messages"] = obs::Json(cluster.messages);
  json["bytes_per_rank"] = u64_array(cluster.bytes_per_rank);
  json["pairs_per_rank"] = u64_array(cluster.pairs_per_rank);
  json["busy_seconds_per_rank"] = f64_array(cluster.busy_seconds_per_rank);
  json["imbalance"] = obs::Json(cluster.imbalance);
  json["imbalance_pre"] = obs::Json(cluster.imbalance_pre);
  json["imbalance_post"] = obs::Json(cluster.imbalance_post);
  json["leases_granted"] = obs::Json(cluster.leases_granted);
  json["steals"] = obs::Json(cluster.steals);
  json["tiles_reclaimed"] = obs::Json(cluster.tiles_reclaimed);
  json["dead_ranks"] = i32_array(cluster.dead_ranks);
  json["seconds"] = obs::Json(cluster.seconds);
  return json;
}

namespace {

obs::Json engine_to_json(const EngineStats& engine) {
  obs::Json json = obs::Json::object();
  json["kernel"] = obs::Json(std::string(engine.kernel));
  json["estimator"] = obs::Json(std::string(engine.estimator));
  json["panel_width"] = obs::Json(engine.panel_width);
  json["pairs_computed"] = obs::Json(engine.pairs_computed);
  json["pairs_resumed"] = obs::Json(engine.pairs_resumed);
  json["edges_emitted"] = obs::Json(engine.edges_emitted);
  json["tiles"] = obs::Json(engine.tiles);
  json["tiles_resumed"] = obs::Json(engine.tiles_resumed);
  json["panels_swept"] = obs::Json(engine.panels_swept);
  json["panel_fill_ratio"] = obs::Json(engine.panel_fill_ratio());
  json["seconds"] = obs::Json(engine.seconds);
  json["tiles_per_thread"] = u64_array(engine.tiles_per_thread);
  json["pairs_per_thread"] = u64_array(engine.pairs_per_thread);
  if (engine.tiles_timed > 0) {
    obs::Json tile_seconds = obs::Json::object();
    tile_seconds["tiles_timed"] = obs::Json(engine.tiles_timed);
    tile_seconds["p50"] = obs::Json(engine.tile_seconds_p50);
    tile_seconds["p95"] = obs::Json(engine.tile_seconds_p95);
    tile_seconds["max"] = obs::Json(engine.tile_seconds_max);
    json["tile_seconds"] = std::move(tile_seconds);
  }
  if (!engine.lanes.empty()) {
    obs::Json lanes = obs::Json::array();
    for (const EngineStats::LaneStats& lane : engine.lanes) {
      obs::Json entry = obs::Json::object();
      entry["label"] = obs::Json(lane.label);
      entry["kernel"] = obs::Json(std::string(lane.kernel));
      entry["threads"] = obs::Json(lane.threads);
      entry["predicted_fraction"] = obs::Json(lane.predicted_fraction);
      entry["measured_fraction"] = obs::Json(lane.measured_fraction);
      entry["tiles"] = obs::Json(lane.tiles);
      entry["pairs"] = obs::Json(lane.pairs);
      entry["busy_seconds"] = obs::Json(lane.busy_seconds);
      entry["observed_gflops"] = obs::Json(lane.observed_gflops);
      lanes.push_back(std::move(entry));
    }
    json["lanes"] = std::move(lanes);
    json["lane_leases"] = obs::Json(engine.lane_leases);
    json["lane_steals"] = obs::Json(engine.lane_steals);
  }
  return json;
}

obs::Json pool_to_json(const BuildResult& result) {
  obs::Json json = obs::Json::object();
  json["lifetime_seconds"] = obs::Json(result.pool_lifetime_seconds);
  obs::Json workers = obs::Json::array();
  for (std::size_t tid = 0; tid < result.pool_busy_seconds.size(); ++tid) {
    const double busy = result.pool_busy_seconds[tid];
    double idle = result.pool_lifetime_seconds - busy;
    if (idle < 0.0) idle = 0.0;  // clock-granularity slack
    obs::Json worker = obs::Json::object();
    worker["tid"] = obs::Json(tid);
    worker["busy_seconds"] = obs::Json(busy);
    worker["idle_seconds"] = obs::Json(idle);
    workers.push_back(std::move(worker));
  }
  json["workers"] = std::move(workers);
  return json;
}

}  // namespace

obs::Json make_run_manifest(const BuildResult& result,
                            const TingeConfig& config,
                            const ClusterManifest* cluster) {
  obs::Json manifest = obs::Json::object();
  manifest["schema_version"] = obs::Json(kManifestSchemaVersion);
  manifest["tool"] = obs::Json(std::string("tingex"));
  manifest["config"] = config_to_json(config);

  obs::Json resolved = obs::Json::object();
  resolved["kernel"] = obs::Json(std::string(result.engine.kernel));
  resolved["estimator"] = obs::Json(std::string(result.engine.estimator));
  resolved["panel_width"] = obs::Json(result.engine.panel_width);
  manifest["resolved"] = std::move(resolved);

  obs::Json dataset = obs::Json::object();
  dataset["genes_in"] = obs::Json(result.genes_in);
  dataset["genes_used"] = obs::Json(result.genes_used);
  dataset["samples"] = obs::Json(result.samples);
  dataset["imputed_cells"] = obs::Json(result.imputed_cells);
  manifest["dataset"] = std::move(dataset);

  obs::Json run_result = obs::Json::object();
  run_result["edges"] = obs::Json(result.network.n_edges());
  run_result["threshold"] = obs::Json(result.threshold);
  run_result["marginal_entropy"] = obs::Json(result.marginal_entropy);
  run_result["pairs_computed"] = obs::Json(result.engine.pairs_computed);
  if (result.dpi_stats.triangles_examined > 0 ||
      result.dpi_stats.edges_removed > 0) {
    run_result["dpi_triangles_examined"] =
        obs::Json(result.dpi_stats.triangles_examined);
    run_result["dpi_edges_removed"] = obs::Json(result.dpi_stats.edges_removed);
  }
  if (result.consensus.resamples > 0) {
    obs::Json consensus = obs::Json::object();
    consensus["resamples"] = obs::Json(result.consensus.resamples);
    consensus["estimators"] = obs::Json(result.consensus.estimators);
    consensus["candidate_edges"] = obs::Json(result.consensus.candidate_edges);
    consensus["kept_edges"] = obs::Json(result.consensus.kept_edges);
    consensus["thresholds"] = f64_array(result.consensus.thresholds);
    run_result["consensus"] = std::move(consensus);
  }
  manifest["result"] = std::move(run_result);

  if (cluster != nullptr) manifest["cluster"] = cluster_to_json(*cluster);

  if (result.trace)
    manifest["stages"] = obs::span_to_json(result.trace->root());
  manifest["engine"] = engine_to_json(result.engine);
  manifest["pool"] = pool_to_json(result);
  manifest["metrics"] = obs::metrics_to_json(result.metrics);
  return manifest;
}

void write_run_manifest(const BuildResult& result, const TingeConfig& config,
                        const std::string& path) {
  obs::write_json_file(make_run_manifest(result, config), path);
}

}  // namespace tinge
