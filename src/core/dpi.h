// Data Processing Inequality filtering (ARACNE; Margolin et al. 2006).
//
// If x -> z -> y is the true path, information theory bounds
// MI(x, y) <= min(MI(x, z), MI(z, y)); the direct (x, y) edge is then
// likely an indirect artifact. For every triangle in the thresholded
// network the weakest edge is removed when it is weaker than
// (1 - tolerance) * min(other two). TINGe offers this as a post-processing
// step and so do we (TingeConfig::apply_dpi).
#pragma once

#include "graph/network.h"

namespace tinge {

struct DpiStats {
  std::size_t triangles_examined = 0;
  std::size_t edges_removed = 0;
};

/// Returns the DPI-filtered network. `tolerance` in [0, 1): 0 is the strict
/// inequality, larger values keep more borderline edges.
GeneNetwork apply_dpi(const GeneNetwork& network, double tolerance,
                      DpiStats* stats = nullptr);

}  // namespace tinge
