// The universal permutation null distribution — TINGe's trick for making
// permutation testing affordable at whole-genome scale.
//
// A naive permutation test permutes y against x for *every* pair: q extra
// MI evaluations per pair, turning an O(n^2 m) computation into
// O(q n^2 m). But after the rank transform, every gene is a permutation of
// the same multiset, so "MI between gene x and a random permutation of
// gene y" has one and the same distribution for ALL pairs — the
// distribution of MI between two independent uniform-random permutations
// of 0..m-1. Sampling it once with q draws gives a dataset-wide threshold
//   I_alpha = (1 - alpha) quantile of the null,
// and the per-pair cost of significance testing drops to a comparison.
// bench_permutation (experiment T3) quantifies exactly this gap.
#pragma once

#include <cstdint>

#include "core/pair_statistic.h"
#include "mi/bspline_mi.h"
#include "parallel/thread_pool.h"
#include "stats/quantile.h"

namespace tinge {

/// Draws `q` null values of the pair statistic (parallel over `threads`
/// contexts of `pool`, deterministic for a given seed regardless of thread
/// count). The universal-null argument survives the estimator redesign
/// unchanged: every statistic here scores *rank* profiles, and after the
/// rank transform every gene is a uniform-random permutation of 0..m-1
/// under the null, so one q-draw sample serves all pairs.
EmpiricalDistribution build_null_distribution(const PairStatistic& statistic,
                                              std::size_t q,
                                              std::uint64_t seed,
                                              par::ThreadPool& pool,
                                              int threads);

/// B-spline convenience wrapper (wraps `estimator` in a BsplineStat with
/// the given point-eval kernel): bit-identical to the pre-redesign null.
EmpiricalDistribution build_null_distribution(const BsplineMi& estimator,
                                              std::size_t q,
                                              std::uint64_t seed,
                                              par::ThreadPool& pool,
                                              int threads,
                                              MiKernel kernel = MiKernel::Auto);

/// Significance threshold at level alpha. If alpha < 1/(q+1) the empirical
/// quantile saturates; following TINGe we then return the sample maximum
/// (the most conservative threshold q draws can support).
double threshold_for_alpha(const EmpiricalDistribution& null, double alpha);

}  // namespace tinge
