// The PairStatistic concept: what run_sweep computes per gene pair
// (DESIGN.md §6h).
//
// The sweep executor (core/sweep.h) walks tiles and panels; *what* it
// evaluates for each (i, j) pair is this interface. The B-spline MI
// estimator — the paper's — implements the panel hooks with the SIMD panel
// kernels and stays bit-identical to the pre-plugin executor; every other
// statistic (histogram MI, KSG, |Pearson|, |Spearman|, phi-mixing) rides
// the generic fallback that loops eval_pair over a panel. Estimators are
// selected per run via TingeConfig::estimator (--estimator=...) and flow
// as an opaque handle through the engine, both cluster schedulers, the
// permutation null and the consensus builder.
//
// Contract highlights:
//   * eval_pair/eval_panel receive *rank* rows (a permutation of 0..m-1,
//     uint32 classic or uint16 staged) plus the gene indices; rank-based
//     statistics ignore the indices, value-based ones (Pearson) ignore the
//     rank rows and resolve their gene's raw profile from the indices.
//   * uint16 staged rows are widened losslessly by the generic fallback, so
//     staged and unstaged sweeps agree bitwise for every estimator.
//   * eval_null_pair scores two random permutations of 0..m-1 — the
//     universal permutation null (DESIGN §6b) generalized per statistic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator_kind.h"
#include "mi/bspline_mi.h"

namespace tinge {

struct TingeConfig;
class RankedMatrix;
class ExpressionMatrix;

// --- kernel plan ------------------------------------------------------------

/// Kernel, panel width and memory-side policies resolved once per pass,
/// before the parallel region: config Auto goes through the one-shot
/// microbenchmarks (core/sweep.cpp), and the stats report the variant that
/// actually ran. Non-B-spline statistics plan width-1 scalar panels — the
/// generic fallback loops pairs, so only B-spline needs SIMD panels.
struct PanelPlan {
  MiKernel kernel;   ///< concrete kernel handed to every panel sweep
  int width;         ///< panel width B (1..kMaxPanelWidth)
  const char* name;  ///< resolved variant name for EngineStats
  bool prefetch = false;  ///< software prefetch in the panel kernels
  bool packed = false;    ///< FMA panels read the packed table rows
  const char* stat_name = "bspline";  ///< estimator name for stats/metrics
};

// --- scratch ----------------------------------------------------------------

/// Per-context scratch, created once per sweep context and reused across
/// pairs. Statistics subclass it with whatever state their kernel needs
/// (the B-spline JointHistogram, bin count tables, float staging buffers).
/// The wide_x/wide_y buffers belong to the generic uint16 panel fallback
/// (rank widening); eval_pair implementations must not touch them.
struct PairScratch {
  virtual ~PairScratch();
  std::vector<std::uint32_t> wide_x, wide_y;
};

// --- the concept ------------------------------------------------------------

class PairStatistic {
 public:
  virtual ~PairStatistic();

  EstimatorKind kind() const { return kind_; }
  const char* name() const { return estimator_name(kind_); }

  /// Number of samples per profile (m).
  virtual std::size_t n_samples() const = 0;

  /// Shared marginal entropy H(X) in nats, when the statistic has one
  /// (B-spline: every rank profile shares it). 0 otherwise.
  virtual double marginal_entropy() const { return 0.0; }

  /// Resolves the per-pass panel plan. The default is the scalar width-1
  /// plan that drives the generic fallback; B-spline overrides with the
  /// measured kernel/width/knob resolution.
  virtual PanelPlan plan(const TingeConfig& config) const;

  virtual std::unique_ptr<PairScratch> make_scratch() const;

  /// Scores genes i (rank row x) and j (rank row y). Rank rows are
  /// permutations of 0..m-1.
  virtual double eval_pair(const std::uint32_t* x, const std::uint32_t* y,
                           std::size_t i, std::size_t j,
                           PairScratch& scratch) const = 0;

  /// Panel evaluation: out[p] = score(gene i, gene j0+p) for p < width.
  /// The default loops eval_pair; B-spline overrides with the SIMD panel
  /// kernels. Must be bit-identical to per-pair eval_pair calls.
  virtual void eval_panel(const std::uint32_t* x,
                          const std::uint32_t* const* ys, std::size_t width,
                          std::size_t i, std::size_t j0,
                          const PanelOptions& options, PairScratch& scratch,
                          double* out) const;

  /// Staged (uint16) variant. The default widens into the scratch staging
  /// buffers and reuses eval_pair — lossless, so staged sweeps match
  /// unstaged ones bitwise for every statistic.
  virtual void eval_panel(const std::uint16_t* x,
                          const std::uint16_t* const* ys, std::size_t width,
                          std::size_t i, std::size_t j0,
                          const PanelOptions& options, PairScratch& scratch,
                          double* out) const;

  /// Scores one permutation-null draw: x and y are two independent random
  /// permutations of 0..m-1. The default delegates to eval_pair with
  /// dummy gene indices; value-based statistics override (Pearson scores
  /// the permutations as rank profiles — a Spearman null).
  virtual double eval_null_pair(const std::uint32_t* x,
                                const std::uint32_t* y,
                                PairScratch& scratch) const;

  /// Checkpoint-signature discretization parameters: journals written with
  /// different values must not resume each other.
  virtual std::uint32_t signature_bins() const = 0;
  virtual std::uint32_t signature_order() const { return 0; }

 protected:
  explicit PairStatistic(EstimatorKind kind) : kind_(kind) {}

 private:
  EstimatorKind kind_;
};

// --- the paper's estimator --------------------------------------------------

/// B-spline MI as a PairStatistic. Wraps a BsplineMi either by reference
/// (caller keeps it alive — engine/test call sites) or by value (the
/// factory and the cluster broadcast path). `kernel` is the point-eval
/// kernel used outside planned panels (null draws, per-pair calls); panel
/// sweeps take theirs from the PanelPlan, exactly as before the redesign.
class BsplineStat final : public PairStatistic {
 public:
  explicit BsplineStat(const BsplineMi& mi, MiKernel kernel = MiKernel::Auto)
      : PairStatistic(EstimatorKind::Bspline), mi_(&mi), kernel_(kernel) {}
  explicit BsplineStat(BsplineMi&& mi, MiKernel kernel = MiKernel::Auto)
      : PairStatistic(EstimatorKind::Bspline),
        owned_(std::make_unique<BsplineMi>(std::move(mi))),
        mi_(owned_.get()),
        kernel_(kernel) {}

  const BsplineMi& bspline() const { return *mi_; }

  std::size_t n_samples() const override { return mi_->n_samples(); }
  double marginal_entropy() const override { return mi_->marginal_entropy(); }
  PanelPlan plan(const TingeConfig& config) const override;
  std::unique_ptr<PairScratch> make_scratch() const override;
  double eval_pair(const std::uint32_t* x, const std::uint32_t* y,
                   std::size_t i, std::size_t j,
                   PairScratch& scratch) const override;
  void eval_panel(const std::uint32_t* x, const std::uint32_t* const* ys,
                  std::size_t width, std::size_t i, std::size_t j0,
                  const PanelOptions& options, PairScratch& scratch,
                  double* out) const override;
  void eval_panel(const std::uint16_t* x, const std::uint16_t* const* ys,
                  std::size_t width, std::size_t i, std::size_t j0,
                  const PanelOptions& options, PairScratch& scratch,
                  double* out) const override;
  double eval_null_pair(const std::uint32_t* x, const std::uint32_t* y,
                        PairScratch& scratch) const override;
  std::uint32_t signature_bins() const override {
    return static_cast<std::uint32_t>(mi_->basis().bins());
  }
  std::uint32_t signature_order() const override {
    return static_cast<std::uint32_t>(mi_->basis().order());
  }

 private:
  std::unique_ptr<BsplineMi> owned_;  ///< set only for the owning ctor
  const BsplineMi* mi_;
  MiKernel kernel_;
};

// --- factory ----------------------------------------------------------------

/// Builds the statistic `config.estimator` selects, sized for `ranked`.
/// `raw` is the expression matrix the ranks were computed from; required by
/// value-based statistics (Pearson) and must outlive the returned handle —
/// pass nullptr only when config.estimator is known to be rank-based.
std::unique_ptr<PairStatistic> make_pair_statistic(
    const TingeConfig& config, const RankedMatrix& ranked,
    const ExpressionMatrix* raw = nullptr);

}  // namespace tinge
