#include "core/consensus.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "core/mi_engine.h"
#include "core/null_distribution.h"
#include "core/pair_statistic.h"
#include "stats/rng.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge {

namespace {

/// One engine run's configuration: the caller's knobs minus everything that
/// must not recurse into or distort a consensus member sweep.
TingeConfig member_config(const TingeConfig& config, EstimatorKind estimator) {
  TingeConfig member = config;
  member.estimator = estimator;
  member.consensus_resamples = 0;
  member.consensus_estimators.clear();
  member.checkpoint_path.clear();  // journaling B*E sweeps would thrash
  member.apply_dpi = false;        // DPI runs once, on the consensus network
  return member;
}

/// Bootstrap resample of the sample axis: column s of the result is column
/// indices[s] of `working`. Gene rows keep their identity, so edge indices
/// stay comparable across resamples.
ExpressionMatrix resample_columns(const ExpressionMatrix& working,
                                  const std::vector<std::uint32_t>& indices) {
  ExpressionMatrix resampled(working.n_genes(), working.n_samples());
  for (std::size_t g = 0; g < working.n_genes(); ++g) {
    const std::span<const float> src = working.row(g);
    const std::span<float> dst = resampled.row(g);
    for (std::size_t s = 0; s < indices.size(); ++s) dst[s] = src[indices[s]];
  }
  return resampled;
}

}  // namespace

std::vector<EstimatorKind> consensus_estimator_list(const TingeConfig& config) {
  if (config.consensus_estimators.empty()) return {config.estimator};
  std::vector<EstimatorKind> kinds;
  std::size_t begin = 0;
  const std::string& list = config.consensus_estimators;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    std::string_view token(list.data() + begin, end - begin);
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (!token.empty()) {
      const EstimatorKind kind = parse_estimator(token);
      if (std::find(kinds.begin(), kinds.end(), kind) != kinds.end())
        throw std::invalid_argument(
            strprintf("duplicate consensus estimator '%s'",
                      estimator_name(kind)));
      kinds.push_back(kind);
    }
    begin = end + 1;
  }
  if (kinds.empty())
    throw std::invalid_argument("consensus estimator list is empty");
  return kinds;
}

GeneNetwork build_consensus_network(
    const ExpressionMatrix& working, const RankedMatrix& ranked,
    const TingeConfig& config, par::ThreadPool& pool,
    const std::function<void(std::string_view)>& log, ConsensusStats* stats) {
  TINGE_EXPECTS(config.consensus_resamples >= 1);
  TINGE_EXPECTS(working.n_genes() == ranked.n_genes());
  TINGE_EXPECTS(working.n_samples() == ranked.n_samples());
  const Stopwatch watch;
  const std::size_t n = ranked.n_genes();
  const std::size_t m = ranked.n_samples();
  const std::size_t B = config.consensus_resamples;
  const std::vector<EstimatorKind> estimators =
      consensus_estimator_list(config);

  // Per-estimator significance thresholds from the FULL data's universal
  // null. The null distribution of any statistic here depends only on m —
  // two independent random permutations of 0..m-1 — and the bootstrap
  // preserves m, so one null per estimator serves every resample.
  std::vector<double> thresholds;
  thresholds.reserve(estimators.size());
  for (const EstimatorKind kind : estimators) {
    const TingeConfig member = member_config(config, kind);
    const std::unique_ptr<PairStatistic> statistic =
        make_pair_statistic(member, ranked, &working);
    const EmpiricalDistribution null = build_null_distribution(
        *statistic, config.permutations, config.seed, pool, config.threads);
    thresholds.push_back(threshold_for_alpha(null, config.alpha));
    if (log)
      log(strprintf("consensus: estimator %s threshold %.5f (q=%zu, "
                    "alpha=%.2e)",
                    estimator_name(kind), thresholds.back(),
                    config.permutations, config.alpha));
  }

  // Vote accumulation, keyed (u << 32) | v with u < v (GeneNetwork's edge
  // normalization). Iteration order of the map never shows in the result:
  // finalize() sorts the surviving edges.
  std::unordered_map<std::uint64_t, std::uint32_t> votes;
  std::size_t pairs_computed = 0;
  std::vector<std::uint32_t> indices(m);
  for (std::size_t b = 0; b < B; ++b) {
    // The same resampled columns for every estimator at round b — the
    // voters must disagree about the statistic, not about the data. The
    // long_jump decorrelates this stream from the null-distribution
    // streams, which are seeded with the same (seed, golden-ratio) recipe.
    Xoshiro256 rng(config.seed + 0x9e3779b97f4a7c15ULL * (b + 1));
    rng.long_jump();
    for (std::size_t s = 0; s < m; ++s)
      indices[s] = static_cast<std::uint32_t>(rng.below(m));
    const ExpressionMatrix resampled = resample_columns(working, indices);
    const RankedMatrix reranked(resampled);
    for (std::size_t e = 0; e < estimators.size(); ++e) {
      const TingeConfig member = member_config(config, estimators[e]);
      const std::unique_ptr<PairStatistic> statistic =
          make_pair_statistic(member, reranked, &resampled);
      const MiEngine engine(*statistic, reranked);
      const GeneNetwork network =
          engine.compute_network(thresholds[e], member, pool);
      for (const Edge& edge : network.edges())
        ++votes[(static_cast<std::uint64_t>(edge.u) << 32) | edge.v];
      pairs_computed += n * (n - 1) / 2;
    }
  }

  const double total_runs =
      static_cast<double>(B) * static_cast<double>(estimators.size());
  GeneNetwork consensus(ranked.gene_names());
  std::size_t kept = 0;
  for (const auto& [key, count] : votes) {
    const double frequency = static_cast<double>(count) / total_runs;
    if (frequency < config.consensus_min_frequency) continue;
    consensus.add_edge(static_cast<std::uint32_t>(key >> 32),
                       static_cast<std::uint32_t>(key & 0xffffffffu),
                       static_cast<float>(frequency));
    ++kept;
  }
  consensus.finalize();

  if (log)
    log(strprintf("consensus: %zu resamples x %zu estimators, %zu candidate "
                  "edges, %zu kept at frequency >= %.2f",
                  B, estimators.size(), votes.size(), kept,
                  config.consensus_min_frequency));
  if (stats != nullptr) {
    stats->resamples = B;
    stats->estimators = estimators.size();
    stats->thresholds = std::move(thresholds);
    stats->candidate_edges = votes.size();
    stats->kept_edges = kept;
    stats->pairs_computed = pairs_computed;
    stats->seconds = watch.seconds();
  }
  return consensus;
}

}  // namespace tinge
