// Checkpoint/restart for the all-pairs MI pass.
//
// A whole-genome run is tens of minutes on one chip and hours on one core;
// losing it to a node failure at 95% is exactly the operational pain the
// paper's cluster-replacing pitch invites. The engine can therefore journal
// completed tiles to an append-only checkpoint file and resume from it:
//
//   header:  magic "TNGC" | u32 version | RunSignature
//   records: u64 tile_index | u32 edge_count | edges (u32,u32,f32)...
//
// Records are appended under a writer lock as tiles finish, so after a
// crash the file contains a prefix of whole records (a torn tail record is
// detected and discarded on load). Resume validates the signature — the
// checkpoint is only meaningful for the identical run configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/network.h"

namespace tinge {

/// Identifies a run; a checkpoint loads only into an identical run.
struct RunSignature {
  std::uint64_t n_genes = 0;
  std::uint64_t n_samples = 0;
  std::uint64_t tile_size = 0;
  std::uint32_t bins = 0;
  std::uint32_t order = 0;
  double threshold = 0.0;
  /// EstimatorKind of the pair statistic, as uint32 (0 = bspline, the
  /// value every pre-estimator journal implicitly carried).
  std::uint32_t estimator = 0;

  friend bool operator==(const RunSignature&, const RunSignature&) = default;
};

/// Append-only journal of completed tiles. Thread-safe append.
class CheckpointWriter {
 public:
  /// Creates/truncates `path` and writes the header.
  CheckpointWriter(const std::string& path, const RunSignature& signature);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Appends one completed tile (called concurrently by worker threads).
  void append_tile(std::size_t tile_index, std::span<const Edge> edges);

  /// Forces appended records to stable storage (fflush + fsync). append_tile
  /// only flushes to the kernel — cheap, but a machine crash can still lose
  /// entries — so the sweep sink calls this on its progress-throttle
  /// boundaries: everything reported as done is durable, without paying an
  /// fsync per tile.
  void sync();

  /// Flushes, fsyncs and closes. Called automatically by the destructor.
  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One whole journal record: a completed tile and its surviving edges.
struct TileRecord {
  std::uint64_t tile_index = 0;
  std::vector<Edge> edges;
};

/// Result of loading a checkpoint file.
struct CheckpointState {
  RunSignature signature;
  std::vector<TileRecord> records;  ///< whole records, duplicates removed
  bool tail_truncated = false;      ///< a torn final record was discarded

  /// Sorted unique completed tile indices.
  std::vector<std::uint64_t> completed_tiles() const;
  /// All edges across records.
  std::vector<Edge> all_edges() const;
};

/// Loads all whole records of `path`. Throws IoError on a missing file,
/// bad magic, or unsupported version. A torn tail (crash mid-append) is
/// tolerated and flagged.
CheckpointState load_checkpoint(const std::string& path);

/// True if `path` exists and holds a checkpoint matching `signature`.
bool checkpoint_matches(const std::string& path, const RunSignature& signature);

}  // namespace tinge
