#include "core/dpi.h"

#include <algorithm>
#include <unordered_set>

#include "util/contracts.h"

namespace tinge {

namespace {
std::uint64_t edge_key(std::uint32_t u, std::uint32_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

GeneNetwork apply_dpi(const GeneNetwork& network, double tolerance,
                      DpiStats* stats) {
  TINGE_EXPECTS(network.finalized());
  TINGE_EXPECTS(tolerance >= 0.0 && tolerance < 1.0);

  const Adjacency adjacency(network);
  std::unordered_set<std::uint64_t> removed;
  DpiStats local_stats;
  const float keep_factor = static_cast<float>(1.0 - tolerance);

  // Enumerate each triangle once: for edge (u, v) with u < v, intersect the
  // neighbor lists and keep only witnesses z > v.
  for (const Edge& e : network.edges()) {
    const auto nu = adjacency.neighbors(e.u);
    const auto nv = adjacency.neighbors(e.v);
    std::size_t iu = 0, iv = 0;
    while (iu < nu.size() && iv < nv.size()) {
      if (nu[iu].node < nv[iv].node) {
        ++iu;
      } else if (nu[iu].node > nv[iv].node) {
        ++iv;
      } else {
        const std::uint32_t z = nu[iu].node;
        if (z > e.v) {
          ++local_stats.triangles_examined;
          const float w_uv = e.weight;
          const float w_uz = nu[iu].weight;
          const float w_vz = nv[iv].weight;
          // Find the strictly weakest edge of the triangle and remove it if
          // dominated by the other two beyond the tolerance.
          const float weakest = std::min({w_uv, w_uz, w_vz});
          const float second = std::min(std::max(w_uv, w_uz),
                                        std::max(std::min(w_uv, w_uz), w_vz));
          if (weakest < second * keep_factor) {
            if (w_uv == weakest) {
              removed.insert(edge_key(e.u, e.v));
            } else if (w_uz == weakest) {
              removed.insert(edge_key(e.u, z));
            } else {
              removed.insert(edge_key(e.v, z));
            }
          }
        }
        ++iu;
        ++iv;
      }
    }
  }

  GeneNetwork filtered(network.node_names());
  for (const Edge& e : network.edges()) {
    if (removed.count(edge_key(e.u, e.v)) == 0) {
      filtered.add_edge(e.u, e.v, e.weight);
    }
  }
  filtered.finalize();
  local_stats.edges_removed = network.n_edges() - filtered.n_edges();
  if (stats != nullptr) *stats = local_stats;
  return filtered;
}

}  // namespace tinge
