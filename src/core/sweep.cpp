#include "core/sweep.h"

#include <utility>

#include "core/mi_engine.h"
#include "data/tsv_io.h"
#include "obs/metrics.h"

namespace tinge {

SweepPlan SweepPlan::triangular(std::size_t gene_begin, std::size_t gene_end,
                                std::size_t tile_size) {
  SweepPlan plan;
  append_triangle_tiles(gene_begin, gene_end, tile_size, plan.tiles_);
  for (const Tile& tile : plan.tiles_) plan.total_pairs_ += tile.pair_count();
  return plan;
}

SweepPlan SweepPlan::rectangular(std::size_t row_begin, std::size_t row_end,
                                 std::size_t col_begin, std::size_t col_end,
                                 std::size_t tile_size) {
  SweepPlan plan;
  append_rectangle_tiles(row_begin, row_end, col_begin, col_end, tile_size,
                         plan.tiles_);
  for (const Tile& tile : plan.tiles_) plan.total_pairs_ += tile.pair_count();
  return plan;
}

PanelPlan plan_panels(const BsplineMi& estimator, const TingeConfig& config) {
  const WeightTable& table = estimator.table();
  const int width = config.panel_width > 0
                        ? std::min(config.panel_width, kMaxPanelWidth)
                        : auto_panel_width(table);
  const MiKernel kernel = resolve_kernel_measured(config.kernel, table, width);
  PanelPlan plan{kernel, width,
                 kernel_name(resolve_panel_kernel(kernel, table.order()))};
  switch (config.packed_table) {
    case KnobMode::On:
      plan.packed = true;
      break;
    case KnobMode::Off:
      plan.packed = false;
      break;
    case KnobMode::Auto: {
      const PanelOptions base{kernel, false, false};
      plan.packed = packed_pays_measured(table, base, width);
      break;
    }
  }
  switch (config.prefetch) {
    case KnobMode::On:
      plan.prefetch = true;
      break;
    case KnobMode::Off:
      plan.prefetch = false;
      break;
    case KnobMode::Auto: {
      PanelOptions base{kernel, false, plan.packed};
      plan.prefetch = prefetch_pays_measured(table, base, width);
      break;
    }
  }
  return plan;
}

NumaTilePlan make_numa_tile_plan(const SweepPlan& plan, std::size_t n_genes,
                                 int nodes, int threads,
                                 const par::NumaLayout* layout) {
  TINGE_EXPECTS(nodes >= 1);
  TINGE_EXPECTS(threads >= 1);
  NumaTilePlan numa;
  numa.nodes = nodes;
  // Adopt the cpu->node table only when it describes the same node space
  // the plan was built for; a synthetic plan (tests forcing N nodes on a
  // 1-node host) keeps the tid-block fallback.
  if (layout != nullptr && layout->nodes == nodes)
    numa.cpu_node = layout->cpu_node;
  numa.tile_node.resize(plan.count());
  for (std::size_t t = 0; t < plan.count(); ++t) {
    numa.tile_node[t] =
        numa_node_of_gene(plan.tile(t).row_begin, n_genes, nodes);
  }
  numa.thread_node.resize(static_cast<std::size_t>(threads));
  for (int tid = 0; tid < threads; ++tid) {
    numa.thread_node[static_cast<std::size_t>(tid)] = numa_node_of_gene(
        static_cast<std::size_t>(tid), static_cast<std::size_t>(threads),
        nodes);
  }
  return numa;
}

void JournalSink::tile_end(int tid, std::size_t t, int team_width) {
  if (team_width <= 1) {
    writer_.append_tile(t, buffers_.local(tid));
  } else {
    // Gather the members' shares into one record. Members hold panels
    // round-robin, so the record is not row-major — the journal does not
    // promise an intra-tile order, and the network finalizer sorts.
    std::vector<Edge> merged;
    for (int member = 0; member < team_width; ++member) {
      const auto& buffer = buffers_.local(tid + member);
      merged.insert(merged.end(), buffer.begin(), buffer.end());
    }
    writer_.append_tile(t, merged);
  }

  const std::size_t completed =
      tiles_done_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // The throttle runs with or without a progress callback: it is also the
  // journal's fsync cadence, and durability must not depend on whether
  // anyone asked for progress lines.
  constexpr std::int64_t kProgressMinMicros = 100'000;  // ~100 ms
  bool due = progress_.interval <= 1 || completed == progress_.total ||
             completed - last_reported_.load(std::memory_order_relaxed) >=
                 progress_.interval;
  if (!due) {
    const auto now_us = static_cast<std::int64_t>(watch_.seconds() * 1e6);
    due = now_us - last_report_us_.load(std::memory_order_relaxed) >=
          kProgressMinMicros;
  }
  if (due) {
    const std::lock_guard<std::mutex> lock(progress_mutex_);
    // Durability rides the progress throttle: fsync the journal before
    // reporting, so every tile a progress line ever claimed as done
    // survives a machine crash — without paying an fsync per tile.
    writer_.sync();
    last_reported_.store(completed, std::memory_order_relaxed);
    last_report_us_.store(static_cast<std::int64_t>(watch_.seconds() * 1e6),
                          std::memory_order_relaxed);
    if (progress_.callback) progress_.callback(completed, progress_.total);
  }
}

ResumeState load_resume_state(const std::string& path,
                              const RunSignature& signature,
                              const SweepPlan& plan) {
  ResumeState resume;
  resume.done.assign(plan.count(), 0);
  if (!checkpoint_matches(path, signature)) {
    // A journal that matches in every dimension *except* the estimator is
    // not a stale leftover — it is the same run asked to continue under a
    // different statistic, whose scores are incomparable with the
    // journaled edges. Fail loudly instead of quietly starting over.
    CheckpointState mismatched;
    bool readable = true;
    try {
      mismatched = load_checkpoint(path);
    } catch (const IoError&) {
      readable = false;  // absent/corrupt/old-format: plain fresh start
    }
    if (readable) {
      RunSignature rebased = mismatched.signature;
      rebased.estimator = signature.estimator;
      if (rebased == signature && mismatched.signature.estimator !=
                                      signature.estimator) {
        throw ContractViolation(strprintf(
            "checkpoint %s was journaled with estimator '%s' but this run "
            "uses '%s'; remove the journal or rerun with --estimator=%s",
            path.c_str(),
            estimator_name(
                static_cast<EstimatorKind>(mismatched.signature.estimator)),
            estimator_name(static_cast<EstimatorKind>(signature.estimator)),
            estimator_name(
                static_cast<EstimatorKind>(mismatched.signature.estimator))));
      }
    }
    return resume;
  }
  CheckpointState state = load_checkpoint(path);
  for (TileRecord& record : state.records) {
    const auto index = static_cast<std::size_t>(record.tile_index);
    if (index < plan.count() && !resume.done[index]) {
      resume.done[index] = 1;
      resume.pairs_resumed += plan.tile(index).pair_count();
      resume.records.push_back(std::move(record));
    }
  }
  return resume;
}

void finalize_engine_pass(EngineStats* stats, const PanelPlan& plan,
                          std::size_t plan_tiles, double seconds,
                          std::span<const SweepCounters> per_thread,
                          std::size_t edges_emitted, std::size_t tiles_resumed,
                          std::size_t pairs_resumed) {
  std::uint64_t pairs = 0, panels = 0, tiles_done = 0;
  std::uint64_t tiles_local = 0, tiles_stolen = 0;
  for (const SweepCounters& c : per_thread) {
    pairs += c.pairs;
    panels += c.panels;
    tiles_done += c.tiles;
    tiles_local += c.tiles_local;
    tiles_stolen += c.tiles_stolen;
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("engine.runs").add(1);
  registry.counter("engine.pairs_computed").add(pairs);
  registry.counter("engine.pairs_resumed").add(pairs_resumed);
  registry.counter("engine.edges_emitted").add(edges_emitted);
  registry.counter("engine.tiles_completed").add(tiles_done);
  registry.counter("engine.tiles_resumed").add(tiles_resumed);
  registry.counter("engine.panels_swept").add(panels);
  registry.gauge("engine.panel_width").set(plan.width);
  // Per-estimator attribution: which statistic swept how many pairs (the
  // consensus ensemble runs several per process).
  registry.counter(strprintf("engine.estimator.%s.pairs", plan.stat_name))
      .add(pairs);
  // Only the NUMA node-queue scheduler produces these; publishing zeros
  // from every plain pass would just bloat the registry dump.
  if (tiles_local + tiles_stolen > 0) {
    registry.counter("engine.numa.tiles_local").add(tiles_local);
    registry.counter("engine.numa.tiles_stolen").add(tiles_stolen);
  }
  registry.gauge("engine.seconds").set(seconds);
  registry.histogram("engine.pass_seconds").record(seconds);
  for (std::size_t tid = 0; tid < per_thread.size(); ++tid) {
    registry.counter(strprintf("engine.thread.%zu.tiles", tid))
        .add(per_thread[tid].tiles);
    registry.counter(strprintf("engine.thread.%zu.pairs", tid))
        .add(per_thread[tid].pairs);
  }

  if (stats != nullptr) {
    stats->pairs_computed = pairs + pairs_resumed;
    stats->pairs_resumed = pairs_resumed;
    stats->edges_emitted = edges_emitted;
    stats->tiles = plan_tiles;
    stats->tiles_resumed = tiles_resumed;
    stats->panels_swept = panels;
    stats->seconds = seconds;
    stats->kernel = plan.name;
    stats->estimator = plan.stat_name;
    stats->panel_width = plan.width;
    stats->tiles_per_thread.assign(per_thread.size(), 0);
    stats->pairs_per_thread.assign(per_thread.size(), 0);
    for (std::size_t tid = 0; tid < per_thread.size(); ++tid) {
      stats->tiles_per_thread[tid] = per_thread[tid].tiles;
      stats->pairs_per_thread[tid] = per_thread[tid].pairs;
    }
  }
}

}  // namespace tinge
