#include "core/sweep.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "core/mi_engine.h"
#include "data/tsv_io.h"
#include "obs/metrics.h"

namespace tinge {

SweepPlan SweepPlan::triangular(std::size_t gene_begin, std::size_t gene_end,
                                std::size_t tile_size) {
  SweepPlan plan;
  append_triangle_tiles(gene_begin, gene_end, tile_size, plan.tiles_);
  for (const Tile& tile : plan.tiles_) plan.total_pairs_ += tile.pair_count();
  return plan;
}

SweepPlan SweepPlan::rectangular(std::size_t row_begin, std::size_t row_end,
                                 std::size_t col_begin, std::size_t col_end,
                                 std::size_t tile_size) {
  SweepPlan plan;
  append_rectangle_tiles(row_begin, row_end, col_begin, col_end, tile_size,
                         plan.tiles_);
  for (const Tile& tile : plan.tiles_) plan.total_pairs_ += tile.pair_count();
  return plan;
}

SweepPlan SweepPlan::from_tiles(std::vector<Tile> tiles) {
  SweepPlan plan;
  plan.tiles_ = std::move(tiles);
  for (const Tile& tile : plan.tiles_) plan.total_pairs_ += tile.pair_count();
  return plan;
}

PanelPlan plan_panels(const BsplineMi& estimator, const TingeConfig& config) {
  const WeightTable& table = estimator.table();
  const int width = config.panel_width > 0
                        ? std::min(config.panel_width, kMaxPanelWidth)
                        : auto_panel_width(table);
  const MiKernel kernel = resolve_kernel_measured(config.kernel, table, width);
  PanelPlan plan{kernel, width,
                 kernel_name(resolve_panel_kernel(kernel, table.order()))};
  switch (config.packed_table) {
    case KnobMode::On:
      plan.packed = true;
      break;
    case KnobMode::Off:
      plan.packed = false;
      break;
    case KnobMode::Auto: {
      const PanelOptions base{kernel, false, false};
      plan.packed = packed_pays_measured(table, base, width);
      break;
    }
  }
  switch (config.prefetch) {
    case KnobMode::On:
      plan.prefetch = true;
      break;
    case KnobMode::Off:
      plan.prefetch = false;
      break;
    case KnobMode::Auto: {
      PanelOptions base{kernel, false, plan.packed};
      plan.prefetch = prefetch_pays_measured(table, base, width);
      break;
    }
  }
  return plan;
}

LaneLedger::LaneLedger(const SweepPlan& plan, std::size_t n_lanes,
                       const std::vector<double>& seed_fractions,
                       const std::vector<char>* skip)
    : plan_(&plan), pending_(n_lanes), lane_tiles_(n_lanes, 0) {
  TINGE_EXPECTS(n_lanes >= 1);
  TINGE_EXPECTS(seed_fractions.empty() || seed_fractions.size() == n_lanes);
  TINGE_EXPECTS(skip == nullptr || skip->size() == plan.count());
  ready_.reserve(plan.count());
  for (std::size_t t = 0; t < plan.count(); ++t) {
    if (skip != nullptr && (*skip)[t]) continue;
    ready_.push_back(t);
  }
  // LPT order, exactly as LeaseLedger: largest tiles first so the end-game
  // tail is made of the cheapest tiles, ties by ascending index so the
  // order is deterministic.
  std::stable_sort(ready_.begin(), ready_.end(),
                   [&plan](std::size_t a, std::size_t b) {
                     const std::size_t pa = plan.tile(a).pair_count();
                     const std::size_t pb = plan.tile(b).pair_count();
                     if (pa != pb) return pa > pb;
                     return a < b;
                   });
  // Seed grants, issued upfront from the predicted split: each lane's
  // first batch is half its predicted share (the other half stays in the
  // ready queue to absorb prediction error). Granting before any context
  // runs — combined with steals never emptying a queue — guarantees every
  // lane at least one tile, so the measured partition and the calibration
  // always cover all lanes.
  const std::size_t total = ready_.size();
  for (std::size_t lane = 0; lane < n_lanes && head_ < total; ++lane) {
    double fraction = 1.0 / static_cast<double>(n_lanes);
    if (!seed_fractions.empty() && seed_fractions[lane] > 0.0 &&
        seed_fractions[lane] <= 1.0)
      fraction = seed_fractions[lane];
    const auto share = static_cast<std::size_t>(
        fraction * static_cast<double>(total) * 0.5);
    const std::size_t batch =
        std::min(std::max<std::size_t>(1, share), total - head_);
    for (std::size_t i = 0; i < batch; ++i)
      pending_[lane].push_back(ready_[head_++]);
    ++leases_;
  }
}

void LaneLedger::grant_locked(std::size_t lane) {
  const std::size_t remaining = ready_.size() - head_;
  if (remaining == 0) return;
  const std::size_t batch = std::min(
      std::max<std::size_t>(1, remaining / (2 * pending_.size())), remaining);
  for (std::size_t i = 0; i < batch; ++i)
    pending_[lane].push_back(ready_[head_++]);
  ++leases_;
}

void LaneLedger::steal_locked(std::size_t lane) {
  // Victim: the lane with the most granted-but-unclaimed tiles. Steal the
  // back half of its queue — under LPT order the back holds the smaller
  // tiles, the right size for end-game rebalancing — but never the front
  // tile, which stays reserved so a late-waking lane still computes (and
  // times) at least one tile.
  std::size_t victim = lane;
  std::size_t richest = 0;
  for (std::size_t l = 0; l < pending_.size(); ++l) {
    if (l == lane) continue;
    if (pending_[l].size() > richest) {
      richest = pending_[l].size();
      victim = l;
    }
  }
  if (victim == lane || richest <= 1) return;
  const std::size_t moved =
      std::min(std::max<std::size_t>(1, richest / 2), richest - 1);
  auto& from = pending_[victim];
  auto& to = pending_[lane];
  to.insert(to.end(), from.end() - static_cast<std::ptrdiff_t>(moved),
            from.end());
  from.erase(from.end() - static_cast<std::ptrdiff_t>(moved), from.end());
  steals_ += moved;
}

std::size_t LaneLedger::next(int lane) {
  TINGE_EXPECTS(lane >= 0 &&
                static_cast<std::size_t>(lane) < pending_.size());
  const auto l = static_cast<std::size_t>(lane);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (pending_[l].empty()) grant_locked(l);
  if (pending_[l].empty()) steal_locked(l);
  if (pending_[l].empty()) return npos;
  const std::size_t tile = pending_[l].front();
  pending_[l].erase(pending_[l].begin());
  ++claimed_;
  return tile;
}

void LaneLedger::complete(int lane, std::size_t tile) {
  TINGE_EXPECTS(lane >= 0 &&
                static_cast<std::size_t>(lane) < pending_.size());
  TINGE_EXPECTS(tile < plan_->count());
  const std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  ++lane_tiles_[static_cast<std::size_t>(lane)];
}

std::size_t LaneLedger::tiles_total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ready_.size();
}

std::size_t LaneLedger::tiles_granted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return head_;
}

std::size_t LaneLedger::tiles_claimed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return claimed_;
}

std::size_t LaneLedger::tiles_completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::size_t LaneLedger::outstanding() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return claimed_ - completed_;
}

std::size_t LaneLedger::leases_granted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return leases_;
}

std::size_t LaneLedger::steals() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return steals_;
}

std::uint64_t LaneLedger::lane_tiles(int lane) const {
  TINGE_EXPECTS(lane >= 0 &&
                static_cast<std::size_t>(lane) < pending_.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  return lane_tiles_[static_cast<std::size_t>(lane)];
}

std::size_t LaneLedger::lane_pending(int lane) const {
  TINGE_EXPECTS(lane >= 0 &&
                static_cast<std::size_t>(lane) < pending_.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  return pending_[static_cast<std::size_t>(lane)].size();
}

bool LaneLedger::drained() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (head_ < ready_.size()) return false;
  for (const auto& queue : pending_)
    if (!queue.empty()) return false;
  return true;
}

bool LaneLedger::done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_ == ready_.size();
}

NumaTilePlan make_numa_tile_plan(const SweepPlan& plan, std::size_t n_genes,
                                 int nodes, int threads,
                                 const par::NumaLayout* layout) {
  TINGE_EXPECTS(nodes >= 1);
  TINGE_EXPECTS(threads >= 1);
  NumaTilePlan numa;
  numa.nodes = nodes;
  // Adopt the cpu->node table only when it describes the same node space
  // the plan was built for; a synthetic plan (tests forcing N nodes on a
  // 1-node host) keeps the tid-block fallback.
  if (layout != nullptr && layout->nodes == nodes)
    numa.cpu_node = layout->cpu_node;
  numa.tile_node.resize(plan.count());
  for (std::size_t t = 0; t < plan.count(); ++t) {
    numa.tile_node[t] =
        numa_node_of_gene(plan.tile(t).row_begin, n_genes, nodes);
  }
  numa.thread_node.resize(static_cast<std::size_t>(threads));
  for (int tid = 0; tid < threads; ++tid) {
    numa.thread_node[static_cast<std::size_t>(tid)] = numa_node_of_gene(
        static_cast<std::size_t>(tid), static_cast<std::size_t>(threads),
        nodes);
  }
  return numa;
}

void JournalSink::tile_end(int tid, std::size_t t, int team_width) {
  if (team_width <= 1) {
    writer_.append_tile(t, buffers_.local(tid));
  } else {
    // Gather the members' shares into one record. Members hold panels
    // round-robin, so the record is not row-major — the journal does not
    // promise an intra-tile order, and the network finalizer sorts.
    std::vector<Edge> merged;
    for (int member = 0; member < team_width; ++member) {
      const auto& buffer = buffers_.local(tid + member);
      merged.insert(merged.end(), buffer.begin(), buffer.end());
    }
    writer_.append_tile(t, merged);
  }

  const std::size_t completed =
      tiles_done_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // The throttle runs with or without a progress callback: it is also the
  // journal's fsync cadence, and durability must not depend on whether
  // anyone asked for progress lines.
  constexpr std::int64_t kProgressMinMicros = 100'000;  // ~100 ms
  bool due = progress_.interval <= 1 || completed == progress_.total ||
             completed - last_reported_.load(std::memory_order_relaxed) >=
                 progress_.interval;
  if (!due) {
    const auto now_us = static_cast<std::int64_t>(watch_.seconds() * 1e6);
    due = now_us - last_report_us_.load(std::memory_order_relaxed) >=
          kProgressMinMicros;
  }
  if (due) {
    const std::lock_guard<std::mutex> lock(progress_mutex_);
    // Durability rides the progress throttle: fsync the journal before
    // reporting, so every tile a progress line ever claimed as done
    // survives a machine crash — without paying an fsync per tile.
    writer_.sync();
    last_reported_.store(completed, std::memory_order_relaxed);
    last_report_us_.store(static_cast<std::int64_t>(watch_.seconds() * 1e6),
                          std::memory_order_relaxed);
    if (progress_.callback) progress_.callback(completed, progress_.total);
  }
}

ResumeState load_resume_state(const std::string& path,
                              const RunSignature& signature,
                              const SweepPlan& plan) {
  ResumeState resume;
  resume.done.assign(plan.count(), 0);
  if (!checkpoint_matches(path, signature)) {
    // A journal that matches in every dimension *except* the estimator is
    // not a stale leftover — it is the same run asked to continue under a
    // different statistic, whose scores are incomparable with the
    // journaled edges. Fail loudly instead of quietly starting over.
    CheckpointState mismatched;
    bool readable = true;
    try {
      mismatched = load_checkpoint(path);
    } catch (const IoError&) {
      readable = false;  // absent/corrupt/old-format: plain fresh start
    }
    if (readable) {
      RunSignature rebased = mismatched.signature;
      rebased.estimator = signature.estimator;
      if (rebased == signature && mismatched.signature.estimator !=
                                      signature.estimator) {
        throw ContractViolation(strprintf(
            "checkpoint %s was journaled with estimator '%s' but this run "
            "uses '%s'; remove the journal or rerun with --estimator=%s",
            path.c_str(),
            estimator_name(
                static_cast<EstimatorKind>(mismatched.signature.estimator)),
            estimator_name(static_cast<EstimatorKind>(signature.estimator)),
            estimator_name(
                static_cast<EstimatorKind>(mismatched.signature.estimator))));
      }
    }
    return resume;
  }
  CheckpointState state = load_checkpoint(path);
  for (TileRecord& record : state.records) {
    const auto index = static_cast<std::size_t>(record.tile_index);
    if (index < plan.count() && !resume.done[index]) {
      resume.done[index] = 1;
      resume.pairs_resumed += plan.tile(index).pair_count();
      resume.records.push_back(std::move(record));
    }
  }
  return resume;
}

namespace {

/// Nearest-rank percentile over a sorted sample vector.
double percentile_sorted(const std::vector<float>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

void finalize_engine_pass(EngineStats* stats, const PanelPlan& plan,
                          std::size_t plan_tiles, double seconds,
                          std::span<const SweepCounters> per_thread,
                          std::size_t edges_emitted, std::size_t tiles_resumed,
                          std::size_t pairs_resumed, const LanePlan* lanes) {
  std::uint64_t pairs = 0, panels = 0, tiles_done = 0;
  std::uint64_t tiles_local = 0, tiles_stolen = 0;
  std::uint64_t tiles_timed = 0;
  double tile_seconds_max = 0.0;
  std::vector<float> tile_samples;
  for (const SweepCounters& c : per_thread) {
    pairs += c.pairs;
    panels += c.panels;
    tiles_done += c.tiles;
    tiles_local += c.tiles_local;
    tiles_stolen += c.tiles_stolen;
    tiles_timed += c.tiles_timed;
    if (c.tile_seconds_max > tile_seconds_max)
      tile_seconds_max = c.tile_seconds_max;
    tile_samples.insert(tile_samples.end(), c.tile_seconds.begin(),
                        c.tile_seconds.end());
  }
  std::sort(tile_samples.begin(), tile_samples.end());
  const double tile_p50 = percentile_sorted(tile_samples, 0.50);
  const double tile_p95 = percentile_sorted(tile_samples, 0.95);

  // Per-lane outcome: attribute each context's counters to its lane and
  // reconstruct the measured partition from live throughput — what each
  // lane's pair rate (pairs per busy second, scaled by its thread count)
  // says the split *should* have been. This is the number the manifest
  // reports next to the perf model's prediction.
  std::vector<EngineStats::LaneStats> lane_stats;
  if (lanes != nullptr && !lanes->lanes.empty()) {
    lane_stats.resize(lanes->lanes.size());
    for (std::size_t l = 0; l < lanes->lanes.size(); ++l) {
      const SweepLane& lane = lanes->lanes[l];
      EngineStats::LaneStats& out = lane_stats[l];
      out.label = lane.label;
      out.kernel = lane.panels.name;
      out.threads = lane.threads();
      out.predicted_fraction = lane.predicted_fraction;
      for (int tid = lane.begin_context;
           tid < lane.end_context &&
           static_cast<std::size_t>(tid) < per_thread.size();
           ++tid) {
        out.tiles += per_thread[tid].tiles;
        out.pairs += per_thread[tid].pairs;
        out.busy_seconds += per_thread[tid].tile_seconds_sum;
      }
      if (lanes->model != nullptr)
        out.observed_gflops = lanes->model->observed_gflops(static_cast<int>(l));
    }
    // busy_seconds sums per-context tile times, so pairs/busy is the lane's
    // *per-thread* rate; the lane's throughput is that times its width.
    const auto lane_rate = [](const EngineStats::LaneStats& out) {
      return out.busy_seconds > 0.0
                 ? static_cast<double>(out.pairs) / out.busy_seconds *
                       static_cast<double>(out.threads)
                 : 0.0;
    };
    double rate_total = 0.0;
    for (const EngineStats::LaneStats& out : lane_stats)
      rate_total += lane_rate(out);
    for (EngineStats::LaneStats& out : lane_stats)
      if (rate_total > 0.0) out.measured_fraction = lane_rate(out) / rate_total;
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("engine.runs").add(1);
  registry.counter("engine.pairs_computed").add(pairs);
  registry.counter("engine.pairs_resumed").add(pairs_resumed);
  registry.counter("engine.edges_emitted").add(edges_emitted);
  registry.counter("engine.tiles_completed").add(tiles_done);
  registry.counter("engine.tiles_resumed").add(tiles_resumed);
  registry.counter("engine.panels_swept").add(panels);
  registry.gauge("engine.panel_width").set(plan.width);
  // Per-estimator attribution: which statistic swept how many pairs (the
  // consensus ensemble runs several per process).
  registry.counter(strprintf("engine.estimator.%s.pairs", plan.stat_name))
      .add(pairs);
  // Only the NUMA node-queue scheduler produces these; publishing zeros
  // from every plain pass would just bloat the registry dump.
  if (tiles_local + tiles_stolen > 0) {
    registry.counter("engine.numa.tiles_local").add(tiles_local);
    registry.counter("engine.numa.tiles_stolen").add(tiles_stolen);
  }
  registry.gauge("engine.seconds").set(seconds);
  registry.histogram("engine.pass_seconds").record(seconds);
  if (tiles_timed > 0) {
    registry.counter("engine.tiles_timed").add(tiles_timed);
    registry.gauge("engine.tile_seconds_p50").set(tile_p50);
    registry.gauge("engine.tile_seconds_p95").set(tile_p95);
    registry.gauge("engine.tile_seconds_max").set(tile_seconds_max);
  }
  for (std::size_t tid = 0; tid < per_thread.size(); ++tid) {
    registry.counter(strprintf("engine.thread.%zu.tiles", tid))
        .add(per_thread[tid].tiles);
    registry.counter(strprintf("engine.thread.%zu.pairs", tid))
        .add(per_thread[tid].pairs);
  }
  if (!lane_stats.empty()) {
    registry.counter("engine.lane.leases").add(lanes->leases_granted);
    registry.counter("engine.lane.steals").add(lanes->steals);
    for (std::size_t l = 0; l < lane_stats.size(); ++l) {
      const EngineStats::LaneStats& out = lane_stats[l];
      registry.counter(strprintf("engine.lane.%zu.tiles", l)).add(out.tiles);
      registry.counter(strprintf("engine.lane.%zu.pairs", l)).add(out.pairs);
      registry.gauge(strprintf("engine.lane.%zu.threads", l))
          .set(out.threads);
      registry.gauge(strprintf("engine.lane.%zu.busy_seconds", l))
          .set(out.busy_seconds);
      registry.gauge(strprintf("engine.lane.%zu.predicted_fraction", l))
          .set(out.predicted_fraction);
      registry.gauge(strprintf("engine.lane.%zu.measured_fraction", l))
          .set(out.measured_fraction);
      registry.gauge(strprintf("engine.lane.%zu.gflops", l))
          .set(out.observed_gflops);
    }
  }

  if (stats != nullptr) {
    stats->pairs_computed = pairs + pairs_resumed;
    stats->pairs_resumed = pairs_resumed;
    stats->edges_emitted = edges_emitted;
    stats->tiles = plan_tiles;
    stats->tiles_resumed = tiles_resumed;
    stats->panels_swept = panels;
    stats->seconds = seconds;
    stats->kernel = plan.name;
    stats->estimator = plan.stat_name;
    stats->panel_width = plan.width;
    stats->tiles_per_thread.assign(per_thread.size(), 0);
    stats->pairs_per_thread.assign(per_thread.size(), 0);
    for (std::size_t tid = 0; tid < per_thread.size(); ++tid) {
      stats->tiles_per_thread[tid] = per_thread[tid].tiles;
      stats->pairs_per_thread[tid] = per_thread[tid].pairs;
    }
    stats->tiles_timed = tiles_timed;
    stats->tile_seconds_p50 = tile_p50;
    stats->tile_seconds_p95 = tile_p95;
    stats->tile_seconds_max = tile_seconds_max;
    stats->lanes = std::move(lane_stats);
    stats->lane_leases = lanes != nullptr ? lanes->leases_granted : 0;
    stats->lane_steals = lanes != nullptr ? lanes->steals : 0;
  }
}

}  // namespace tinge
