#include "core/mi_engine.h"

#include <algorithm>
#include <cstdio>

#include "core/checkpoint.h"
#include "core/sweep.h"
#include "util/timer.h"

namespace tinge {

namespace {

// Every compute_* method is a configuration of run_sweep (core/sweep.h):
// the same triangular plan and panel kernel, differing only in scheduler
// options and sink. The executor owns the tile/panel loops, the teamed
// claiming protocol and the resume filter; the methods below just wire a
// plan + scheduler + sink together and finalize the stats.

SweepOptions sweep_options(const TingeConfig& config,
                           const par::ThreadPool& pool) {
  SweepOptions options;
  options.threads = config.threads > 0
                        ? std::min(config.threads, pool.max_threads())
                        : pool.max_threads();
  options.schedule = config.schedule;
  options.team_size = config.team_size;
  return options;
}

std::uint64_t total_pairs_swept(const std::vector<SweepCounters>& counters) {
  std::uint64_t pairs = 0;
  for (const SweepCounters& c : counters) pairs += c.pairs;
  return pairs;
}

}  // namespace

EngineStats engine_stats_from_metrics(const obs::MetricsSnapshot& snapshot) {
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = snapshot.counters.find(name);
    return it != snapshot.counters.end() ? it->second : 0;
  };
  EngineStats stats;
  stats.pairs_resumed = counter("engine.pairs_resumed");
  stats.pairs_computed = counter("engine.pairs_computed") + stats.pairs_resumed;
  stats.edges_emitted = counter("engine.edges_emitted");
  stats.tiles_resumed = counter("engine.tiles_resumed");
  stats.tiles = counter("engine.tiles_completed") + stats.tiles_resumed;
  stats.panels_swept = counter("engine.panels_swept");
  const auto gauge = [&](const char* name) -> double {
    const auto it = snapshot.gauges.find(name);
    return it != snapshot.gauges.end() ? it->second : 0.0;
  };
  stats.seconds = gauge("engine.seconds");
  stats.panel_width = static_cast<int>(gauge("engine.panel_width"));
  for (const auto& [name, value] : snapshot.counters) {
    std::size_t tid = 0;
    char what[16] = {0};
    if (std::sscanf(name.c_str(), "engine.thread.%zu.%15s", &tid, what) != 2)
      continue;
    auto& sink = std::string_view(what) == "tiles" ? stats.tiles_per_thread
                                                   : stats.pairs_per_thread;
    if (sink.size() <= tid) sink.resize(tid + 1, 0);
    sink[tid] += value;
  }
  return stats;
}

MiEngine::MiEngine(const BsplineMi& estimator, const RankedMatrix& ranks)
    : estimator_(estimator), ranks_(ranks) {
  TINGE_EXPECTS(estimator.n_samples() == ranks.n_samples());
  TINGE_EXPECTS(ranks.n_genes() >= 2);
}

GeneNetwork MiEngine::compute_network(double threshold,
                                      const TingeConfig& config,
                                      par::ThreadPool& pool,
                                      EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const SweepPlan plan =
      SweepPlan::triangular(0, ranks_.n_genes(), config.tile_size);
  const PanelPlan panels = plan_panels(estimator_, config);
  const SweepOptions options = sweep_options(config, pool);

  EdgeSink sink(threshold, options.threads);
  const std::vector<SweepCounters> counters = run_sweep(
      plan, estimator_, [this](std::size_t g) { return ranks_.ranks(g).data(); },
      panels, &pool, options, sink);

  GeneNetwork network(ranks_.gene_names());
  sink.drain_into(network);
  network.finalize();

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       network.n_edges(), /*tiles_resumed=*/0,
                       /*pairs_resumed=*/0);
  TINGE_ENSURES(total_pairs_swept(counters) == plan.total_pairs());
  return network;
}

GeneNetwork MiEngine::compute_network_checkpointed(
    double threshold, const TingeConfig& config, par::ThreadPool& pool,
    const std::string& checkpoint_path, EngineStats* stats,
    const std::function<void(std::size_t, std::size_t)>& progress) const {
  config.validate();
  const Stopwatch watch;
  const SweepPlan plan =
      SweepPlan::triangular(0, ranks_.n_genes(), config.tile_size);
  const PanelPlan panels = plan_panels(estimator_, config);
  SweepOptions options = sweep_options(config, pool);

  const RunSignature signature{
      ranks_.n_genes(), ranks_.n_samples(), config.tile_size,
      static_cast<std::uint32_t>(estimator_.basis().bins()),
      static_cast<std::uint32_t>(estimator_.basis().order()), threshold};
  const ResumeState resume =
      load_resume_state(checkpoint_path, signature, plan);
  options.skip = &resume.done;

  // Rewrite the journal fresh (drops any torn tail), replaying prior tiles.
  CheckpointWriter writer(checkpoint_path, signature);
  for (const TileRecord& record : resume.records)
    writer.append_tile(record.tile_index, record.edges);

  const std::size_t interval =
      config.progress_tile_interval > 0
          ? config.progress_tile_interval
          : std::max<std::size_t>(1, plan.count() / 128);
  JournalSink sink(writer, threshold, options.threads,
                   {progress, interval, plan.count(), resume.records.size()});
  const std::vector<SweepCounters> counters = run_sweep(
      plan, estimator_, [this](std::size_t g) { return ranks_.ranks(g).data(); },
      panels, &pool, options, sink);
  writer.close();

  // All tiles journaled: assemble the network from the (now complete) file
  // so the result is exactly what a resume would produce.
  const CheckpointState final_state = load_checkpoint(checkpoint_path);
  TINGE_ENSURES(final_state.completed_tiles().size() == plan.count());
  GeneNetwork network(ranks_.gene_names());
  network.add_edges(final_state.all_edges());
  network.finalize();
  std::remove(checkpoint_path.c_str());

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       network.n_edges(), resume.records.size(),
                       resume.pairs_resumed);
  return network;
}

GeneNetwork MiEngine::compute_network_teamed(double threshold,
                                             const TingeConfig& config,
                                             par::ThreadPool& pool,
                                             int team_size,
                                             EngineStats* stats) const {
  TINGE_EXPECTS(team_size >= 1);
  TingeConfig teamed = config;
  teamed.team_size = team_size;
  return compute_network(threshold, teamed, pool, stats);
}

std::vector<float> MiEngine::compute_dense(const TingeConfig& config,
                                           par::ThreadPool& pool,
                                           EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  TINGE_EXPECTS(n <= 1u << 15);  // dense mode is for study-sized problems
  std::vector<float> mi_matrix(n * n, 0.0f);
  const SweepPlan plan = SweepPlan::triangular(0, n, config.tile_size);
  const PanelPlan panels = plan_panels(estimator_, config);
  const SweepOptions options = sweep_options(config, pool);

  DenseSink sink(mi_matrix.data(), n);
  const std::vector<SweepCounters> counters = run_sweep(
      plan, estimator_, [this](std::size_t g) { return ranks_.ranks(g).data(); },
      panels, &pool, options, sink);

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       /*edges_emitted=*/0, /*tiles_resumed=*/0,
                       /*pairs_resumed=*/0);
  return mi_matrix;
}

}  // namespace tinge
