#include "core/mi_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/checkpoint.h"
#include "core/sweep.h"
#include "device/offload.h"
#include "util/contracts.h"
#include "parallel/topology.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge {

namespace {

// Every compute_* method is a configuration of run_sweep (core/sweep.h):
// the same triangular plan and panel kernel, differing only in scheduler
// options and sink. The executor owns the tile/panel loops, the teamed
// claiming protocol and the resume filter; the methods below just wire a
// plan + scheduler + sink together and finalize the stats.

SweepOptions sweep_options(const TingeConfig& config,
                           const par::ThreadPool& pool) {
  SweepOptions options;
  options.threads = config.threads > 0
                        ? std::min(config.threads, pool.max_threads())
                        : pool.max_threads();
  options.schedule = config.schedule;
  options.team_size = config.team_size;
  return options;
}

std::uint64_t total_pairs_swept(const std::vector<SweepCounters>& counters) {
  std::uint64_t pairs = 0;
  for (const SweepCounters& c : counters) pairs += c.pairs;
  return pairs;
}

// Detected NUMA shape of the host, cached — sysfs does not change mid-run.
const par::NumaLayout& cached_numa_layout() {
  static const par::NumaLayout layout = par::detect_numa_layout();
  return layout;
}

// Memory nodes the pass schedules for: 1 when the knob is off or the host
// has a single node.
int resolved_numa_nodes(const TingeConfig& config) {
  if (config.numa == KnobMode::Off) return 1;
  return cached_numa_layout().nodes;
}

// Assumed fraction of peak for the lane scheduler's *first* pass, before
// any tile has been timed. Deliberately rough — live observe() feedback
// replaces it within one grant batch; it only has to get the seed split
// into the right order of magnitude.
constexpr double kAssumedLaneEfficiency = 0.3;

// Resolves config.hetero into the lane plan the sweep executor consumes:
// per-lane panel plans (each lane sweeps with its own kernel variant),
// contiguous context ranges summing to `threads`, and seed fractions from
// the perf model — calibrated per lane, so a model that has already
// observed tiles (earlier pass of this engine) predicts from measurement.
void build_lane_plan(LanePlan& out, const TingeConfig& config,
                     const PairStatistic& statistic, std::size_t n_samples,
                     PerfModel& model, int threads) {
  out.model = &model;
  out.pair_shape.pairs = 1;
  out.pair_shape.samples = n_samples;
  out.pair_shape.order = statistic.signature_order() > 0
                             ? static_cast<int>(statistic.signature_order())
                             : config.spline_order;
  out.pair_shape.bins = statistic.signature_bins() > 0
                            ? static_cast<int>(statistic.signature_bins())
                            : config.bins;

  std::vector<LaneSpec> specs;
  if (config.hetero == "auto") {
    // The paper's two-device shape: the resolved --kernel as the fast lane,
    // the scalar kernel as the slow one (Xeon-vs-Phi stand-ins).
    specs.push_back(LaneSpec{config.kernel, 0});
    specs.push_back(LaneSpec{MiKernel::Scalar, 0});
  } else {
    specs = parse_lane_specs(config.hetero);
    int spec_threads = 0;
    for (const LaneSpec& spec : specs) spec_threads += spec.threads;
    if (spec_threads != threads) {
      throw ContractViolation(strprintf(
          "--hetero=%s needs %d pool contexts but the pass resolved %d",
          config.hetero.c_str(), spec_threads, threads));
    }
  }

  // Per-lane kernel resolution and modeled per-thread rate. lane_device
  // narrows the host spec to the kernel's issue width, so the static model
  // already ranks scalar below SIMD before any tile has been timed.
  const DeviceSpec host = host_device();
  std::vector<PanelPlan> panels;
  std::vector<double> thread_rate;
  for (std::size_t l = 0; l < specs.size(); ++l) {
    TingeConfig lane_config = config;
    lane_config.kernel = specs[l].kernel;
    panels.push_back(statistic.plan(lane_config));
    thread_rate.push_back(model.calibrated_gflops(
        static_cast<int>(l), lane_device(host, specs[l].kernel), 1));
  }

  if (config.hetero == "auto") {
    // Split the pool by predicted per-thread rate, each lane >= 1 context.
    const double r0 = thread_rate[0];
    const double r1 = thread_rate[1];
    const double share =
        r0 + r1 > 0.0 ? r0 / (r0 + r1) : 1.0 / static_cast<double>(specs.size());
    const int t0 = std::clamp(
        static_cast<int>(std::lround(share * static_cast<double>(threads))), 1,
        threads - 1);
    specs[0].threads = t0;
    specs[1].threads = threads - t0;
  }

  std::vector<double> lane_rate;
  for (std::size_t l = 0; l < specs.size(); ++l)
    lane_rate.push_back(std::max(thread_rate[l], 1e-12) *
                        static_cast<double>(specs[l].threads));
  const std::vector<double> fractions = plan_lane_split(lane_rate);

  int begin = 0;
  for (std::size_t l = 0; l < specs.size(); ++l) {
    SweepLane lane;
    lane.panels = panels[l];
    lane.begin_context = begin;
    lane.end_context = begin + specs[l].threads;
    begin = lane.end_context;
    lane.predicted_fraction = fractions[l];
    lane.label = strprintf("%s:%d", panels[l].name, specs[l].threads);
    out.lanes.push_back(std::move(lane));
  }
  TINGE_ENSURES(begin == threads);
}

// Scheduler state whose lifetime must span the sweep. The engine methods
// keep one PassSetup on the stack and let prepare_pass wire options.numa /
// options.lanes at it — the one place the scheduler-precedence resolution
// (teams > lanes > numa, see TingeConfig::numa) is implemented.
struct PassSetup {
  NumaTilePlan numa_plan;
  LanePlan lane_plan;
  int numa_nodes = 1;
};

void prepare_pass(PassSetup& setup, const SweepPlan& plan, std::size_t n_genes,
                  const TingeConfig& config, const PairStatistic& statistic,
                  std::size_t n_samples, PerfModel* lane_model,
                  SweepOptions& options) {
  setup.numa_nodes = resolved_numa_nodes(config);
  if (config.hetero != "off" && options.team_size <= 1 &&
      options.threads > 1 && plan.count() > 1) {
    TINGE_EXPECTS(lane_model != nullptr);
    build_lane_plan(setup.lane_plan, config, statistic, n_samples, *lane_model,
                    options.threads);
    if (setup.lane_plan.lanes.size() > 1) options.lanes = &setup.lane_plan;
  }
  // numa == Auto resolves off under teams or lanes; numa == On with either
  // was already rejected by config.validate().
  if (options.lanes == nullptr && setup.numa_nodes > 1 &&
      options.team_size <= 1 && options.threads > 1) {
    setup.numa_plan = make_numa_tile_plan(plan, n_genes, setup.numa_nodes,
                                          options.threads,
                                          &cached_numa_layout());
    options.numa = &setup.numa_plan;
  }
}

// Dispatches run_sweep over the staged uint16 rows when available, the
// classic uint32 rows otherwise — the only place the engine's row-source
// choice is made. Staging is estimator-independent: the B-spline kernels
// index the same table rows either way and the generic fallback widens
// losslessly, so every statistic sees identical rank values.
template <typename Sink>
std::vector<SweepCounters> run_ranked_sweep(
    const SweepPlan& plan, const PairStatistic& estimator,
    const RankedMatrix& ranks, const StagedRankMatrix* staged,
    const PanelPlan& panels, par::ThreadPool* pool,
    const SweepOptions& options, Sink& sink) {
  if (staged != nullptr) {
    return run_sweep(
        plan, estimator, [staged](std::size_t g) { return staged->row(g); },
        panels, pool, options, sink);
  }
  return run_sweep(
      plan, estimator,
      [&ranks](std::size_t g) { return ranks.ranks(g).data(); }, panels, pool,
      options, sink);
}

}  // namespace

void fill_staged_first_touch(StagedRankMatrix& staged,
                             const RankedMatrix& ranks, par::ThreadPool& pool,
                             int threads, int nodes) {
  const std::size_t n = ranks.n_genes();
  if (threads <= 1) {
    staged.fill_rows(ranks, 0, n);
    return;
  }
  const auto node_begin = [nodes](std::size_t count, int d) {
    // First index of node d's block: smallest i with i * nodes / count >= d.
    return (static_cast<std::size_t>(d) * count +
            static_cast<std::size_t>(nodes) - 1) /
           static_cast<std::size_t>(nodes);
  };
  const auto t = static_cast<std::size_t>(threads);
  pool.run(threads, [&](int tid, int /*width*/) {
    if (t < static_cast<std::size_t>(nodes)) {
      // Fewer threads than nodes: the tid block partition below would map
      // some nodes to no thread at all, leaving their gene blocks
      // uninitialized. Hand out whole node blocks round-robin instead —
      // every gene row is filled exactly once; some rows merely fault in
      // away from the node their tiles prefer.
      for (int d = tid; d < nodes; d += threads)
        staged.fill_rows(ranks, node_begin(n, d), node_begin(n, d + 1));
      return;
    }
    const int d = numa_node_of_gene(static_cast<std::size_t>(tid), t, nodes);
    const std::size_t tid0 = node_begin(t, d);
    const std::size_t tid1 = node_begin(t, d + 1);
    const std::size_t g0 = node_begin(n, d);
    const std::size_t g1 = node_begin(n, d + 1);
    const std::size_t r = static_cast<std::size_t>(tid) - tid0;
    const std::size_t node_threads = tid1 - tid0;
    const std::size_t genes = g1 - g0;
    staged.fill_rows(ranks, g0 + genes * r / node_threads,
                     g0 + genes * (r + 1) / node_threads);
  });
}

EngineStats engine_stats_from_metrics(const obs::MetricsSnapshot& snapshot) {
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = snapshot.counters.find(name);
    return it != snapshot.counters.end() ? it->second : 0;
  };
  EngineStats stats;
  stats.pairs_resumed = counter("engine.pairs_resumed");
  stats.pairs_computed = counter("engine.pairs_computed") + stats.pairs_resumed;
  stats.edges_emitted = counter("engine.edges_emitted");
  stats.tiles_resumed = counter("engine.tiles_resumed");
  stats.tiles = counter("engine.tiles_completed") + stats.tiles_resumed;
  stats.panels_swept = counter("engine.panels_swept");
  const auto gauge = [&](const char* name) -> double {
    const auto it = snapshot.gauges.find(name);
    return it != snapshot.gauges.end() ? it->second : 0.0;
  };
  stats.seconds = gauge("engine.seconds");
  stats.panel_width = static_cast<int>(gauge("engine.panel_width"));
  for (const auto& [name, value] : snapshot.counters) {
    std::size_t tid = 0;
    char what[16] = {0};
    if (std::sscanf(name.c_str(), "engine.thread.%zu.%15s", &tid, what) != 2)
      continue;
    auto& sink = std::string_view(what) == "tiles" ? stats.tiles_per_thread
                                                   : stats.pairs_per_thread;
    if (sink.size() <= tid) sink.resize(tid + 1, 0);
    sink[tid] += value;
  }
  return stats;
}

MiEngine::MiEngine(const PairStatistic& statistic, const RankedMatrix& ranks)
    : statistic_(statistic), ranks_(ranks) {
  TINGE_EXPECTS(statistic.n_samples() == ranks.n_samples());
  TINGE_EXPECTS(ranks.n_genes() >= 2);
}

MiEngine::MiEngine(const BsplineMi& estimator, const RankedMatrix& ranks)
    : owned_statistic_(std::make_unique<BsplineStat>(estimator)),
      statistic_(*owned_statistic_),
      ranks_(ranks) {
  TINGE_EXPECTS(estimator.n_samples() == ranks.n_samples());
  TINGE_EXPECTS(ranks.n_genes() >= 2);
}

const StagedRankMatrix* MiEngine::staged_ranks(const TingeConfig& config,
                                               par::ThreadPool& pool,
                                               int threads,
                                               int numa_nodes) const {
  if (!config.stage_ranks || !StagedRankMatrix::can_stage(ranks_.n_samples()))
    return nullptr;
  std::call_once(staged_once_, [&] {
    auto staged = std::make_unique<StagedRankMatrix>(ranks_.n_genes(),
                                                     ranks_.n_samples());
    fill_staged_first_touch(*staged, ranks_, pool, threads, numa_nodes);
    staged_ = std::move(staged);
  });
  return staged_.get();
}

PerfModel* MiEngine::lane_model(const TingeConfig& config) const {
  if (config.hetero == "off") return nullptr;
  std::call_once(lane_model_once_, [&] {
    lane_model_ = std::make_unique<PerfModel>(kAssumedLaneEfficiency);
  });
  return lane_model_.get();
}

GeneNetwork MiEngine::compute_network(double threshold,
                                      const TingeConfig& config,
                                      par::ThreadPool& pool,
                                      EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const SweepPlan plan =
      SweepPlan::triangular(0, ranks_.n_genes(), config.tile_size);
  const PanelPlan panels = statistic_.plan(config);
  SweepOptions options = sweep_options(config, pool);

  PassSetup setup;
  prepare_pass(setup, plan, ranks_.n_genes(), config, statistic_,
               ranks_.n_samples(), lane_model(config), options);
  const StagedRankMatrix* staged =
      staged_ranks(config, pool, options.threads, setup.numa_nodes);

  EdgeSink sink(threshold, options.threads);
  const std::vector<SweepCounters> counters = run_ranked_sweep(
      plan, statistic_, ranks_, staged, panels, &pool, options, sink);

  GeneNetwork network(ranks_.gene_names());
  sink.drain_into(network);
  network.finalize();

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       network.n_edges(), /*tiles_resumed=*/0,
                       /*pairs_resumed=*/0, options.lanes);
  TINGE_ENSURES(total_pairs_swept(counters) == plan.total_pairs());
  return network;
}

GeneNetwork MiEngine::compute_network_checkpointed(
    double threshold, const TingeConfig& config, par::ThreadPool& pool,
    const std::string& checkpoint_path, EngineStats* stats,
    const std::function<void(std::size_t, std::size_t)>& progress,
    bool keep_checkpoint) const {
  config.validate();
  const Stopwatch watch;
  const SweepPlan plan =
      SweepPlan::triangular(0, ranks_.n_genes(), config.tile_size);
  const PanelPlan panels = statistic_.plan(config);
  SweepOptions options = sweep_options(config, pool);

  const RunSignature signature{
      ranks_.n_genes(),
      ranks_.n_samples(),
      config.tile_size,
      statistic_.signature_bins(),
      statistic_.signature_order(),
      threshold,
      static_cast<std::uint32_t>(statistic_.kind())};
  const ResumeState resume =
      load_resume_state(checkpoint_path, signature, plan);
  options.skip = &resume.done;

  PassSetup setup;
  prepare_pass(setup, plan, ranks_.n_genes(), config, statistic_,
               ranks_.n_samples(), lane_model(config), options);
  const StagedRankMatrix* staged =
      staged_ranks(config, pool, options.threads, setup.numa_nodes);

  // Rewrite the journal fresh (drops any torn tail), replaying prior tiles.
  CheckpointWriter writer(checkpoint_path, signature);
  for (const TileRecord& record : resume.records)
    writer.append_tile(record.tile_index, record.edges);

  const std::size_t interval =
      config.progress_tile_interval > 0
          ? config.progress_tile_interval
          : std::max<std::size_t>(1, plan.count() / 128);
  JournalSink sink(writer, threshold, options.threads,
                   {progress, interval, plan.count(), resume.records.size()});
  const std::vector<SweepCounters> counters = run_ranked_sweep(
      plan, statistic_, ranks_, staged, panels, &pool, options, sink);
  writer.close();

  // All tiles journaled: assemble the network from the (now complete) file
  // so the result is exactly what a resume would produce.
  const CheckpointState final_state = load_checkpoint(checkpoint_path);
  TINGE_ENSURES(final_state.completed_tiles().size() == plan.count());
  GeneNetwork network(ranks_.gene_names());
  network.add_edges(final_state.all_edges());
  network.finalize();
  if (!keep_checkpoint) std::remove(checkpoint_path.c_str());

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       network.n_edges(), resume.records.size(),
                       resume.pairs_resumed, options.lanes);
  return network;
}

GeneNetwork MiEngine::compute_network_teamed(double threshold,
                                             const TingeConfig& config,
                                             par::ThreadPool& pool,
                                             int team_size,
                                             EngineStats* stats) const {
  TINGE_EXPECTS(team_size >= 1);
  TingeConfig teamed = config;
  teamed.team_size = team_size;
  return compute_network(threshold, teamed, pool, stats);
}

std::vector<float> MiEngine::compute_dense(const TingeConfig& config,
                                           par::ThreadPool& pool,
                                           EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  TINGE_EXPECTS(n <= 1u << 15);  // dense mode is for study-sized problems
  std::vector<float> mi_matrix(n * n, 0.0f);
  const SweepPlan plan = SweepPlan::triangular(0, n, config.tile_size);
  const PanelPlan panels = statistic_.plan(config);
  SweepOptions options = sweep_options(config, pool);

  PassSetup setup;
  prepare_pass(setup, plan, n, config, statistic_, ranks_.n_samples(),
               lane_model(config), options);
  const StagedRankMatrix* staged =
      staged_ranks(config, pool, options.threads, setup.numa_nodes);

  DenseSink sink(mi_matrix.data(), n);
  const std::vector<SweepCounters> counters = run_ranked_sweep(
      plan, statistic_, ranks_, staged, panels, &pool, options, sink);

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       /*edges_emitted=*/0, /*tiles_resumed=*/0,
                       /*pairs_resumed=*/0, options.lanes);
  return mi_matrix;
}

}  // namespace tinge
