#include "core/mi_engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <cstdio>
#include <mutex>
#include <span>

#include "core/checkpoint.h"

#include "parallel/barrier.h"
#include "parallel/parallel_for.h"
#include "parallel/reduction.h"
#include "util/str.h"
#include "util/timer.h"

namespace tinge {

namespace {

// Kernel and panel width resolved once per engine call, before the parallel
// region: config Auto goes through the one-shot microbenchmark here (not in
// the hot loop), and the stats report the variant that actually ran.
struct PanelPlan {
  MiKernel kernel;   ///< concrete kernel handed to every panel sweep
  int width;         ///< panel width B (1..kMaxPanelWidth)
  const char* name;  ///< resolved variant name for EngineStats
};

PanelPlan plan_panels(const BsplineMi& estimator, const TingeConfig& config) {
  const WeightTable& table = estimator.table();
  const int width = config.panel_width > 0
                        ? std::min(config.panel_width, kMaxPanelWidth)
                        : auto_panel_width(table);
  const MiKernel kernel = resolve_kernel_measured(config.kernel, table, width);
  return {kernel, width,
          kernel_name(resolve_panel_kernel(kernel, table.order()))};
}

// Per-context tally of one engine pass. Plain counters on per-thread slots:
// the observability layer costs one integer bump per tile/panel/pair in
// thread-private cache lines, nothing shared.
struct TileCounters {
  std::uint64_t tiles = 0;   ///< tiles this context completed
  std::uint64_t pairs = 0;   ///< pairs this context computed
  std::uint64_t panels = 0;  ///< panel sweeps this context ran
};

/// Sweeps one tile with the row-reuse panel kernel; emit(i, j, mi) fires
/// once per pair in row-major order — the same order for_each_pair visits.
/// Tallies pairs and panel sweeps into `counters`.
template <typename Emit>
void sweep_tile_panels(const BsplineMi& estimator, const RankedMatrix& ranks,
                       const Tile& tile, const PanelPlan& plan,
                       JointHistogram& scratch, TileCounters& counters,
                       Emit&& emit) {
  const std::uint32_t* ry[kMaxPanelWidth];
  double mi[kMaxPanelWidth];
  for_each_row_panel(
      tile, static_cast<std::size_t>(plan.width),
      [&](std::size_t i, std::size_t j0, std::size_t width) {
        for (std::size_t p = 0; p < width; ++p)
          ry[p] = ranks.ranks(j0 + p).data();
        estimator.mi_panel(ranks.ranks(i), ry, width, scratch, plan.kernel,
                           mi);
        ++counters.panels;
        counters.pairs += width;
        for (std::size_t p = 0; p < width; ++p) emit(i, j0 + p, mi[p]);
      });
}

/// The one place every engine path reports through: fills EngineStats (when
/// requested) and publishes the identical numbers as deltas into the
/// engine.* instruments of the process-wide registry. Keeping a single
/// finalizer is what makes the four paths' accounting consistent by
/// construction.
void finalize_pass(EngineStats* stats, const PanelPlan& plan,
                   const TileSet& tiles, double seconds,
                   std::span<const TileCounters> per_thread,
                   std::size_t edges_emitted, std::size_t tiles_resumed,
                   std::size_t pairs_resumed) {
  std::uint64_t pairs = 0, panels = 0, tiles_done = 0;
  for (const TileCounters& c : per_thread) {
    pairs += c.pairs;
    panels += c.panels;
    tiles_done += c.tiles;
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("engine.runs").add(1);
  registry.counter("engine.pairs_computed").add(pairs);
  registry.counter("engine.pairs_resumed").add(pairs_resumed);
  registry.counter("engine.edges_emitted").add(edges_emitted);
  registry.counter("engine.tiles_completed").add(tiles_done);
  registry.counter("engine.tiles_resumed").add(tiles_resumed);
  registry.counter("engine.panels_swept").add(panels);
  registry.gauge("engine.panel_width").set(plan.width);
  registry.gauge("engine.seconds").set(seconds);
  registry.histogram("engine.pass_seconds").record(seconds);
  for (std::size_t tid = 0; tid < per_thread.size(); ++tid) {
    registry.counter(strprintf("engine.thread.%zu.tiles", tid))
        .add(per_thread[tid].tiles);
    registry.counter(strprintf("engine.thread.%zu.pairs", tid))
        .add(per_thread[tid].pairs);
  }

  if (stats != nullptr) {
    stats->pairs_computed = pairs + pairs_resumed;
    stats->pairs_resumed = pairs_resumed;
    stats->edges_emitted = edges_emitted;
    stats->tiles = tiles.count();
    stats->tiles_resumed = tiles_resumed;
    stats->panels_swept = panels;
    stats->seconds = seconds;
    stats->kernel = plan.name;
    stats->panel_width = plan.width;
    stats->tiles_per_thread.assign(per_thread.size(), 0);
    stats->pairs_per_thread.assign(per_thread.size(), 0);
    for (std::size_t tid = 0; tid < per_thread.size(); ++tid) {
      stats->tiles_per_thread[tid] = per_thread[tid].tiles;
      stats->pairs_per_thread[tid] = per_thread[tid].pairs;
    }
  }
}

std::vector<TileCounters> collect(const par::PerThread<TileCounters>& state) {
  std::vector<TileCounters> all(static_cast<std::size_t>(state.size()));
  for (int t = 0; t < state.size(); ++t)
    all[static_cast<std::size_t>(t)] = state.local(t);
  return all;
}

}  // namespace

EngineStats engine_stats_from_metrics(const obs::MetricsSnapshot& snapshot) {
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = snapshot.counters.find(name);
    return it != snapshot.counters.end() ? it->second : 0;
  };
  EngineStats stats;
  stats.pairs_resumed = counter("engine.pairs_resumed");
  stats.pairs_computed = counter("engine.pairs_computed") + stats.pairs_resumed;
  stats.edges_emitted = counter("engine.edges_emitted");
  stats.tiles_resumed = counter("engine.tiles_resumed");
  stats.tiles = counter("engine.tiles_completed") + stats.tiles_resumed;
  stats.panels_swept = counter("engine.panels_swept");
  const auto gauge = [&](const char* name) -> double {
    const auto it = snapshot.gauges.find(name);
    return it != snapshot.gauges.end() ? it->second : 0.0;
  };
  stats.seconds = gauge("engine.seconds");
  stats.panel_width = static_cast<int>(gauge("engine.panel_width"));
  for (const auto& [name, value] : snapshot.counters) {
    std::size_t tid = 0;
    char what[16] = {0};
    if (std::sscanf(name.c_str(), "engine.thread.%zu.%15s", &tid, what) != 2)
      continue;
    auto& sink = std::string_view(what) == "tiles" ? stats.tiles_per_thread
                                                   : stats.pairs_per_thread;
    if (sink.size() <= tid) sink.resize(tid + 1, 0);
    sink[tid] += value;
  }
  return stats;
}

MiEngine::MiEngine(const BsplineMi& estimator, const RankedMatrix& ranks)
    : estimator_(estimator), ranks_(ranks) {
  TINGE_EXPECTS(estimator.n_samples() == ranks.n_samples());
  TINGE_EXPECTS(ranks.n_genes() >= 2);
}

GeneNetwork MiEngine::compute_network(double threshold,
                                      const TingeConfig& config,
                                      par::ThreadPool& pool,
                                      EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  const PanelPlan plan = plan_panels(estimator_, config);

  struct ThreadState {
    std::vector<Edge> edges;
    TileCounters counters;
  };
  par::PerThread<ThreadState> state(threads);

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int tid) {
        JointHistogram scratch = estimator_.make_scratch();
        ThreadState& local = state.local(tid);
        const float threshold_f = static_cast<float>(threshold);
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          ++local.counters.tiles;
          sweep_tile_panels(
              estimator_, ranks_, tiles.tile(t), plan, scratch, local.counters,
              [&](std::size_t i, std::size_t j, double mi) {
                const float mi_f = static_cast<float>(mi);
                if (mi_f >= threshold_f) {
                  local.edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                             static_cast<std::uint32_t>(j),
                                             mi_f});
                }
              });
        }
      });

  GeneNetwork network(ranks_.gene_names());
  std::vector<TileCounters> counters(static_cast<std::size_t>(state.size()));
  for (int t = 0; t < state.size(); ++t) {
    network.add_edges(state.local(t).edges);
    counters[static_cast<std::size_t>(t)] = state.local(t).counters;
  }
  network.finalize();

  finalize_pass(stats, plan, tiles, watch.seconds(), counters,
                network.n_edges(), /*tiles_resumed=*/0, /*pairs_resumed=*/0);
  std::uint64_t pairs = 0;
  for (const TileCounters& c : counters) pairs += c.pairs;
  TINGE_ENSURES(pairs == tiles.total_pairs());
  return network;
}

GeneNetwork MiEngine::compute_network_checkpointed(
    double threshold, const TingeConfig& config, par::ThreadPool& pool,
    const std::string& checkpoint_path, EngineStats* stats,
    const std::function<void(std::size_t, std::size_t)>& progress) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  const PanelPlan plan = plan_panels(estimator_, config);

  const RunSignature signature{
      n, ranks_.n_samples(), config.tile_size,
      static_cast<std::uint32_t>(estimator_.basis().bins()),
      static_cast<std::uint32_t>(estimator_.basis().order()), threshold};

  // Resume state: tiles already journaled by a previous attempt.
  std::vector<char> done(tiles.count(), 0);
  std::vector<TileRecord> prior_records;
  if (checkpoint_matches(checkpoint_path, signature)) {
    CheckpointState state = load_checkpoint(checkpoint_path);
    for (TileRecord& record : state.records) {
      if (record.tile_index < tiles.count() &&
          !done[static_cast<std::size_t>(record.tile_index)]) {
        done[static_cast<std::size_t>(record.tile_index)] = 1;
        prior_records.push_back(std::move(record));
      }
    }
  }
  // Resumed tiles count toward the pass totals (the result covers their
  // pairs) but are tracked separately — the scheduler counters only cover
  // work this run actually executed.
  std::size_t pairs_resumed = 0;
  for (const TileRecord& record : prior_records)
    pairs_resumed +=
        tiles.tile(static_cast<std::size_t>(record.tile_index)).pair_count();

  // Rewrite the journal fresh (drops any torn tail), replaying prior tiles.
  CheckpointWriter writer(checkpoint_path, signature);
  for (const TileRecord& record : prior_records)
    writer.append_tile(record.tile_index, record.edges);

  // Progress throttle: the callback serializes workers behind a mutex, so
  // at whole-genome tile counts it is invoked at most once per `interval`
  // tiles or ~100 ms (whichever comes first); the final tile always
  // reports, and interval == 1 restores exact per-tile callbacks.
  const std::size_t interval =
      config.progress_tile_interval > 0
          ? config.progress_tile_interval
          : std::max<std::size_t>(1, tiles.count() / 128);
  constexpr std::int64_t kProgressMinMicros = 100'000;  // ~100 ms
  std::mutex progress_mutex;
  std::atomic<std::size_t> last_reported{prior_records.size()};
  std::atomic<std::int64_t> last_report_us{0};
  std::atomic<std::size_t> tiles_done{prior_records.size()};
  par::PerThread<TileCounters> state(threads);

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int tid) {
        JointHistogram scratch = estimator_.make_scratch();
        TileCounters& local = state.local(tid);
        std::vector<Edge> tile_edges;
        const float threshold_f = static_cast<float>(threshold);
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          if (done[t]) continue;
          tile_edges.clear();
          sweep_tile_panels(
              estimator_, ranks_, tiles.tile(t), plan, scratch, local,
              [&](std::size_t i, std::size_t j, double mi) {
                const float mi_f = static_cast<float>(mi);
                if (mi_f >= threshold_f) {
                  tile_edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                            static_cast<std::uint32_t>(j),
                                            mi_f});
                }
              });
          writer.append_tile(t, tile_edges);
          ++local.tiles;
          const std::size_t completed =
              tiles_done.fetch_add(1, std::memory_order_acq_rel) + 1;
          if (progress) {
            bool due = interval <= 1 || completed == tiles.count() ||
                       completed -
                               last_reported.load(std::memory_order_relaxed) >=
                           interval;
            if (!due) {
              const auto now_us =
                  static_cast<std::int64_t>(watch.seconds() * 1e6);
              due = now_us - last_report_us.load(std::memory_order_relaxed) >=
                    kProgressMinMicros;
            }
            if (due) {
              std::lock_guard<std::mutex> lock(progress_mutex);
              last_reported.store(completed, std::memory_order_relaxed);
              last_report_us.store(
                  static_cast<std::int64_t>(watch.seconds() * 1e6),
                  std::memory_order_relaxed);
              progress(completed, tiles.count());
            }
          }
        }
      });

  writer.close();

  // All tiles journaled: assemble the network from the (now complete) file
  // so the result is exactly what a resume would produce.
  const CheckpointState final_state = load_checkpoint(checkpoint_path);
  TINGE_ENSURES(final_state.completed_tiles().size() == tiles.count());
  GeneNetwork network(ranks_.gene_names());
  const std::vector<Edge> edges = final_state.all_edges();
  network.add_edges(edges);
  network.finalize();
  std::remove(checkpoint_path.c_str());

  finalize_pass(stats, plan, tiles, watch.seconds(), collect(state),
                network.n_edges(), prior_records.size(), pairs_resumed);
  return network;
}

GeneNetwork MiEngine::compute_network_teamed(double threshold,
                                             const TingeConfig& config,
                                             par::ThreadPool& pool,
                                             int team_size,
                                             EngineStats* stats) const {
  config.validate();
  TINGE_EXPECTS(team_size >= 1);
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  TINGE_EXPECTS(threads % team_size == 0);
  const int n_teams = threads / team_size;
  const PanelPlan plan = plan_panels(estimator_, config);

  struct ThreadState {
    std::vector<Edge> edges;
    TileCounters counters;
  };
  par::PerThread<ThreadState> state(threads);

  // Per-team coordination: the leader claims the next tile from the global
  // counter; a team barrier publishes it to the members; every member then
  // walks the tile's panels and takes those congruent to its member id
  // (panels — not pairs — are the unit of splitting, so each member runs
  // whole row-reuse sweeps).
  std::atomic<std::size_t> next_tile{0};
  struct alignas(kSimdAlignment) TeamSlot {
    std::size_t tile = 0;
    std::unique_ptr<par::SpinBarrier> barrier;
  };
  std::vector<TeamSlot> teams(static_cast<std::size_t>(n_teams));
  for (auto& team : teams)
    team.barrier = std::make_unique<par::SpinBarrier>(team_size);

  pool.run(threads, [&](int tid, int /*width*/) {
    const int team_id = tid / team_size;
    const int member = tid % team_size;
    TeamSlot& team = teams[static_cast<std::size_t>(team_id)];
    JointHistogram scratch = estimator_.make_scratch();
    ThreadState& local = state.local(tid);
    const float threshold_f = static_cast<float>(threshold);
    const std::uint32_t* ry[kMaxPanelWidth];
    double mi[kMaxPanelWidth];

    while (true) {
      if (member == 0)
        team.tile = next_tile.fetch_add(1, std::memory_order_relaxed);
      team.barrier->arrive_and_wait();
      const std::size_t t = team.tile;
      if (t >= tiles.count()) break;
      // The tile is attributed to the claiming leader in the scheduler
      // counters; panel/pair work is attributed to the member that ran it.
      if (member == 0) ++local.counters.tiles;
      std::size_t panel_index = 0;
      for_each_row_panel(
          tiles.tile(t), static_cast<std::size_t>(plan.width),
          [&](std::size_t i, std::size_t j0, std::size_t width) {
            if (static_cast<int>(panel_index++ %
                                 static_cast<std::size_t>(team_size)) !=
                member)
              return;
            for (std::size_t p = 0; p < width; ++p)
              ry[p] = ranks_.ranks(j0 + p).data();
            estimator_.mi_panel(ranks_.ranks(i), ry, width, scratch,
                                plan.kernel, mi);
            ++local.counters.panels;
            local.counters.pairs += width;
            for (std::size_t p = 0; p < width; ++p) {
              const float mi_f = static_cast<float>(mi[p]);
              if (mi_f >= threshold_f) {
                local.edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                           static_cast<std::uint32_t>(j0 + p),
                                           mi_f});
              }
            }
          });
      // Second barrier keeps members in lock-step with the leader's next
      // claim (the leader must not overwrite team.tile early).
      team.barrier->arrive_and_wait();
    }
  });

  GeneNetwork network(ranks_.gene_names());
  std::vector<TileCounters> counters(static_cast<std::size_t>(state.size()));
  for (int t = 0; t < state.size(); ++t) {
    network.add_edges(state.local(t).edges);
    counters[static_cast<std::size_t>(t)] = state.local(t).counters;
  }
  network.finalize();

  finalize_pass(stats, plan, tiles, watch.seconds(), counters,
                network.n_edges(), /*tiles_resumed=*/0, /*pairs_resumed=*/0);
  std::uint64_t pairs = 0;
  for (const TileCounters& c : counters) pairs += c.pairs;
  TINGE_ENSURES(pairs == tiles.total_pairs());
  return network;
}

std::vector<float> MiEngine::compute_dense(const TingeConfig& config,
                                           par::ThreadPool& pool,
                                           EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  TINGE_EXPECTS(n <= 1u << 15);  // dense mode is for study-sized problems
  std::vector<float> mi_matrix(n * n, 0.0f);
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  const PanelPlan plan = plan_panels(estimator_, config);
  par::PerThread<TileCounters> state(threads);

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int tid) {
        JointHistogram scratch = estimator_.make_scratch();
        TileCounters& local = state.local(tid);
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          ++local.tiles;
          sweep_tile_panels(estimator_, ranks_, tiles.tile(t), plan, scratch,
                            local, [&](std::size_t i, std::size_t j, double mi) {
                              const float mi_f = static_cast<float>(mi);
                              mi_matrix[i * n + j] = mi_f;
                              mi_matrix[j * n + i] = mi_f;
                            });
        }
      });

  finalize_pass(stats, plan, tiles, watch.seconds(), collect(state),
                /*edges_emitted=*/0, /*tiles_resumed=*/0, /*pairs_resumed=*/0);
  return mi_matrix;
}

}  // namespace tinge
