#include "core/mi_engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <cstdio>
#include <mutex>

#include "core/checkpoint.h"

#include "parallel/barrier.h"
#include "parallel/parallel_for.h"
#include "parallel/reduction.h"
#include "util/timer.h"

namespace tinge {

namespace {

// Kernel and panel width resolved once per engine call, before the parallel
// region: config Auto goes through the one-shot microbenchmark here (not in
// the hot loop), and the stats report the variant that actually ran.
struct PanelPlan {
  MiKernel kernel;   ///< concrete kernel handed to every panel sweep
  int width;         ///< panel width B (1..kMaxPanelWidth)
  const char* name;  ///< resolved variant name for EngineStats
};

PanelPlan plan_panels(const BsplineMi& estimator, const TingeConfig& config) {
  const WeightTable& table = estimator.table();
  const int width = config.panel_width > 0
                        ? std::min(config.panel_width, kMaxPanelWidth)
                        : auto_panel_width(table);
  const MiKernel kernel = resolve_kernel_measured(config.kernel, table, width);
  return {kernel, width,
          kernel_name(resolve_panel_kernel(kernel, table.order()))};
}

/// Sweeps one tile with the row-reuse panel kernel; emit(i, j, mi) fires
/// once per pair in row-major order — the same order for_each_pair visits.
template <typename Emit>
void sweep_tile_panels(const BsplineMi& estimator, const RankedMatrix& ranks,
                       const Tile& tile, const PanelPlan& plan,
                       JointHistogram& scratch, Emit&& emit) {
  const std::uint32_t* ry[kMaxPanelWidth];
  double mi[kMaxPanelWidth];
  for_each_row_panel(
      tile, static_cast<std::size_t>(plan.width),
      [&](std::size_t i, std::size_t j0, std::size_t width) {
        for (std::size_t p = 0; p < width; ++p)
          ry[p] = ranks.ranks(j0 + p).data();
        estimator.mi_panel(ranks.ranks(i), ry, width, scratch, plan.kernel,
                           mi);
        for (std::size_t p = 0; p < width; ++p) emit(i, j0 + p, mi[p]);
      });
}

}  // namespace

MiEngine::MiEngine(const BsplineMi& estimator, const RankedMatrix& ranks)
    : estimator_(estimator), ranks_(ranks) {
  TINGE_EXPECTS(estimator.n_samples() == ranks.n_samples());
  TINGE_EXPECTS(ranks.n_genes() >= 2);
}

GeneNetwork MiEngine::compute_network(double threshold,
                                      const TingeConfig& config,
                                      par::ThreadPool& pool,
                                      EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  const PanelPlan plan = plan_panels(estimator_, config);

  struct ThreadState {
    std::vector<Edge> edges;
    std::size_t pairs = 0;
  };
  par::PerThread<ThreadState> state(threads);

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int tid) {
        JointHistogram scratch = estimator_.make_scratch();
        ThreadState& local = state.local(tid);
        const float threshold_f = static_cast<float>(threshold);
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          sweep_tile_panels(
              estimator_, ranks_, tiles.tile(t), plan, scratch,
              [&](std::size_t i, std::size_t j, double mi) {
                ++local.pairs;
                const float mi_f = static_cast<float>(mi);
                if (mi_f >= threshold_f) {
                  local.edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                             static_cast<std::uint32_t>(j),
                                             mi_f});
                }
              });
        }
      });

  GeneNetwork network(ranks_.gene_names());
  std::size_t pairs = 0;
  for (int t = 0; t < state.size(); ++t) {
    network.add_edges(state.local(t).edges);
    pairs += state.local(t).pairs;
  }
  network.finalize();

  if (stats != nullptr) {
    stats->pairs_computed = pairs;
    stats->edges_emitted = network.n_edges();
    stats->tiles = tiles.count();
    stats->seconds = watch.seconds();
    stats->kernel = plan.name;
    stats->panel_width = plan.width;
  }
  TINGE_ENSURES(pairs == tiles.total_pairs());
  return network;
}

GeneNetwork MiEngine::compute_network_checkpointed(
    double threshold, const TingeConfig& config, par::ThreadPool& pool,
    const std::string& checkpoint_path, EngineStats* stats,
    const std::function<void(std::size_t, std::size_t)>& progress) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  const PanelPlan plan = plan_panels(estimator_, config);

  const RunSignature signature{
      n, ranks_.n_samples(), config.tile_size,
      static_cast<std::uint32_t>(estimator_.basis().bins()),
      static_cast<std::uint32_t>(estimator_.basis().order()), threshold};

  // Resume state: tiles already journaled by a previous attempt.
  std::vector<char> done(tiles.count(), 0);
  std::vector<TileRecord> prior_records;
  if (checkpoint_matches(checkpoint_path, signature)) {
    CheckpointState state = load_checkpoint(checkpoint_path);
    for (TileRecord& record : state.records) {
      if (record.tile_index < tiles.count() &&
          !done[static_cast<std::size_t>(record.tile_index)]) {
        done[static_cast<std::size_t>(record.tile_index)] = 1;
        prior_records.push_back(std::move(record));
      }
    }
  }

  // Rewrite the journal fresh (drops any torn tail), replaying prior tiles.
  CheckpointWriter writer(checkpoint_path, signature);
  for (const TileRecord& record : prior_records)
    writer.append_tile(record.tile_index, record.edges);

  // Progress throttle: the callback serializes workers behind a mutex, so
  // at whole-genome tile counts it is invoked at most once per `interval`
  // tiles or ~100 ms (whichever comes first); the final tile always
  // reports, and interval == 1 restores exact per-tile callbacks.
  const std::size_t interval =
      config.progress_tile_interval > 0
          ? config.progress_tile_interval
          : std::max<std::size_t>(1, tiles.count() / 128);
  constexpr std::int64_t kProgressMinMicros = 100'000;  // ~100 ms
  std::mutex progress_mutex;
  std::atomic<std::size_t> last_reported{prior_records.size()};
  std::atomic<std::int64_t> last_report_us{0};
  std::atomic<std::size_t> tiles_done{prior_records.size()};
  std::atomic<std::size_t> pairs_computed{0};
  std::atomic<std::size_t> edges_found{0};

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int /*tid*/) {
        JointHistogram scratch = estimator_.make_scratch();
        std::vector<Edge> tile_edges;
        const float threshold_f = static_cast<float>(threshold);
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          if (done[t]) continue;
          tile_edges.clear();
          std::size_t tile_pairs = 0;
          sweep_tile_panels(
              estimator_, ranks_, tiles.tile(t), plan, scratch,
              [&](std::size_t i, std::size_t j, double mi) {
                ++tile_pairs;
                const float mi_f = static_cast<float>(mi);
                if (mi_f >= threshold_f) {
                  tile_edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                            static_cast<std::uint32_t>(j),
                                            mi_f});
                }
              });
          writer.append_tile(t, tile_edges);
          pairs_computed.fetch_add(tile_pairs, std::memory_order_relaxed);
          edges_found.fetch_add(tile_edges.size(), std::memory_order_relaxed);
          const std::size_t completed =
              tiles_done.fetch_add(1, std::memory_order_acq_rel) + 1;
          if (progress) {
            bool due = interval <= 1 || completed == tiles.count() ||
                       completed -
                               last_reported.load(std::memory_order_relaxed) >=
                           interval;
            if (!due) {
              const auto now_us =
                  static_cast<std::int64_t>(watch.seconds() * 1e6);
              due = now_us - last_report_us.load(std::memory_order_relaxed) >=
                    kProgressMinMicros;
            }
            if (due) {
              std::lock_guard<std::mutex> lock(progress_mutex);
              last_reported.store(completed, std::memory_order_relaxed);
              last_report_us.store(
                  static_cast<std::int64_t>(watch.seconds() * 1e6),
                  std::memory_order_relaxed);
              progress(completed, tiles.count());
            }
          }
        }
      });

  writer.close();

  // All tiles journaled: assemble the network from the (now complete) file
  // so the result is exactly what a resume would produce.
  const CheckpointState final_state = load_checkpoint(checkpoint_path);
  TINGE_ENSURES(final_state.completed_tiles().size() == tiles.count());
  GeneNetwork network(ranks_.gene_names());
  const std::vector<Edge> edges = final_state.all_edges();
  network.add_edges(edges);
  network.finalize();
  std::remove(checkpoint_path.c_str());

  if (stats != nullptr) {
    stats->pairs_computed = pairs_computed.load();
    stats->edges_emitted = network.n_edges();
    stats->tiles = tiles.count();
    stats->seconds = watch.seconds();
    stats->kernel = plan.name;
    stats->panel_width = plan.width;
  }
  return network;
}

GeneNetwork MiEngine::compute_network_teamed(double threshold,
                                             const TingeConfig& config,
                                             par::ThreadPool& pool,
                                             int team_size,
                                             EngineStats* stats) const {
  config.validate();
  TINGE_EXPECTS(team_size >= 1);
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  TINGE_EXPECTS(threads % team_size == 0);
  const int n_teams = threads / team_size;
  const PanelPlan plan = plan_panels(estimator_, config);

  struct ThreadState {
    std::vector<Edge> edges;
    std::size_t pairs = 0;
  };
  par::PerThread<ThreadState> state(threads);

  // Per-team coordination: the leader claims the next tile from the global
  // counter; a team barrier publishes it to the members; every member then
  // walks the tile's panels and takes those congruent to its member id
  // (panels — not pairs — are the unit of splitting, so each member runs
  // whole row-reuse sweeps).
  std::atomic<std::size_t> next_tile{0};
  struct alignas(kSimdAlignment) TeamSlot {
    std::size_t tile = 0;
    std::unique_ptr<par::SpinBarrier> barrier;
  };
  std::vector<TeamSlot> teams(static_cast<std::size_t>(n_teams));
  for (auto& team : teams)
    team.barrier = std::make_unique<par::SpinBarrier>(team_size);

  pool.run(threads, [&](int tid, int /*width*/) {
    const int team_id = tid / team_size;
    const int member = tid % team_size;
    TeamSlot& team = teams[static_cast<std::size_t>(team_id)];
    JointHistogram scratch = estimator_.make_scratch();
    ThreadState& local = state.local(tid);
    const float threshold_f = static_cast<float>(threshold);
    const std::uint32_t* ry[kMaxPanelWidth];
    double mi[kMaxPanelWidth];

    while (true) {
      if (member == 0)
        team.tile = next_tile.fetch_add(1, std::memory_order_relaxed);
      team.barrier->arrive_and_wait();
      const std::size_t t = team.tile;
      if (t >= tiles.count()) break;
      std::size_t panel_index = 0;
      for_each_row_panel(
          tiles.tile(t), static_cast<std::size_t>(plan.width),
          [&](std::size_t i, std::size_t j0, std::size_t width) {
            if (static_cast<int>(panel_index++ %
                                 static_cast<std::size_t>(team_size)) !=
                member)
              return;
            for (std::size_t p = 0; p < width; ++p)
              ry[p] = ranks_.ranks(j0 + p).data();
            estimator_.mi_panel(ranks_.ranks(i), ry, width, scratch,
                                plan.kernel, mi);
            local.pairs += width;
            for (std::size_t p = 0; p < width; ++p) {
              const float mi_f = static_cast<float>(mi[p]);
              if (mi_f >= threshold_f) {
                local.edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                           static_cast<std::uint32_t>(j0 + p),
                                           mi_f});
              }
            }
          });
      // Second barrier keeps members in lock-step with the leader's next
      // claim (the leader must not overwrite team.tile early).
      team.barrier->arrive_and_wait();
    }
  });

  GeneNetwork network(ranks_.gene_names());
  std::size_t pairs = 0;
  for (int t = 0; t < state.size(); ++t) {
    network.add_edges(state.local(t).edges);
    pairs += state.local(t).pairs;
  }
  network.finalize();

  if (stats != nullptr) {
    stats->pairs_computed = pairs;
    stats->edges_emitted = network.n_edges();
    stats->tiles = tiles.count();
    stats->seconds = watch.seconds();
    stats->kernel = plan.name;
    stats->panel_width = plan.width;
  }
  TINGE_ENSURES(pairs == tiles.total_pairs());
  return network;
}

std::vector<float> MiEngine::compute_dense(const TingeConfig& config,
                                           par::ThreadPool& pool,
                                           EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  TINGE_EXPECTS(n <= 1u << 15);  // dense mode is for study-sized problems
  std::vector<float> mi_matrix(n * n, 0.0f);
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  const PanelPlan plan = plan_panels(estimator_, config);
  std::atomic<std::size_t> pairs{0};

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int /*tid*/) {
        JointHistogram scratch = estimator_.make_scratch();
        std::size_t local_pairs = 0;
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          sweep_tile_panels(estimator_, ranks_, tiles.tile(t), plan, scratch,
                            [&](std::size_t i, std::size_t j, double mi) {
                              const float mi_f = static_cast<float>(mi);
                              mi_matrix[i * n + j] = mi_f;
                              mi_matrix[j * n + i] = mi_f;
                              ++local_pairs;
                            });
        }
        pairs.fetch_add(local_pairs, std::memory_order_relaxed);
      });

  if (stats != nullptr) {
    stats->pairs_computed = pairs.load();
    stats->edges_emitted = 0;
    stats->tiles = tiles.count();
    stats->seconds = watch.seconds();
    stats->kernel = plan.name;
    stats->panel_width = plan.width;
  }
  return mi_matrix;
}

}  // namespace tinge
