#include "core/mi_engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <cstdio>
#include <mutex>

#include "core/checkpoint.h"

#include "parallel/barrier.h"
#include "parallel/parallel_for.h"
#include "parallel/reduction.h"
#include "util/timer.h"

namespace tinge {

MiEngine::MiEngine(const BsplineMi& estimator, const RankedMatrix& ranks)
    : estimator_(estimator), ranks_(ranks) {
  TINGE_EXPECTS(estimator.n_samples() == ranks.n_samples());
  TINGE_EXPECTS(ranks.n_genes() >= 2);
}

GeneNetwork MiEngine::compute_network(double threshold,
                                      const TingeConfig& config,
                                      par::ThreadPool& pool,
                                      EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();

  struct ThreadState {
    std::vector<Edge> edges;
    std::size_t pairs = 0;
  };
  par::PerThread<ThreadState> state(threads);

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int tid) {
        JointHistogram scratch = estimator_.make_scratch();
        ThreadState& local = state.local(tid);
        const float threshold_f = static_cast<float>(threshold);
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          const Tile& tile = tiles.tile(t);
          for_each_pair(tile, [&](std::size_t i, std::size_t j) {
            const double mi = estimator_.mi(ranks_.ranks(i), ranks_.ranks(j),
                                            scratch, config.kernel);
            ++local.pairs;
            const float mi_f = static_cast<float>(mi);
            if (mi_f >= threshold_f) {
              local.edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                         static_cast<std::uint32_t>(j), mi_f});
            }
          });
        }
      });

  GeneNetwork network(ranks_.gene_names());
  std::size_t pairs = 0;
  for (int t = 0; t < state.size(); ++t) {
    network.add_edges(state.local(t).edges);
    pairs += state.local(t).pairs;
  }
  network.finalize();

  if (stats != nullptr) {
    stats->pairs_computed = pairs;
    stats->edges_emitted = network.n_edges();
    stats->tiles = tiles.count();
    stats->seconds = watch.seconds();
  }
  TINGE_ENSURES(pairs == tiles.total_pairs());
  return network;
}

GeneNetwork MiEngine::compute_network_checkpointed(
    double threshold, const TingeConfig& config, par::ThreadPool& pool,
    const std::string& checkpoint_path, EngineStats* stats,
    const std::function<void(std::size_t, std::size_t)>& progress) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();

  const RunSignature signature{
      n, ranks_.n_samples(), config.tile_size,
      static_cast<std::uint32_t>(estimator_.basis().bins()),
      static_cast<std::uint32_t>(estimator_.basis().order()), threshold};

  // Resume state: tiles already journaled by a previous attempt.
  std::vector<char> done(tiles.count(), 0);
  std::vector<TileRecord> prior_records;
  if (checkpoint_matches(checkpoint_path, signature)) {
    CheckpointState state = load_checkpoint(checkpoint_path);
    for (TileRecord& record : state.records) {
      if (record.tile_index < tiles.count() &&
          !done[static_cast<std::size_t>(record.tile_index)]) {
        done[static_cast<std::size_t>(record.tile_index)] = 1;
        prior_records.push_back(std::move(record));
      }
    }
  }

  // Rewrite the journal fresh (drops any torn tail), replaying prior tiles.
  CheckpointWriter writer(checkpoint_path, signature);
  for (const TileRecord& record : prior_records)
    writer.append_tile(record.tile_index, record.edges);

  std::mutex progress_mutex;
  std::atomic<std::size_t> tiles_done{prior_records.size()};
  std::atomic<std::size_t> pairs_computed{0};
  std::atomic<std::size_t> edges_found{0};

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int /*tid*/) {
        JointHistogram scratch = estimator_.make_scratch();
        std::vector<Edge> tile_edges;
        const float threshold_f = static_cast<float>(threshold);
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          if (done[t]) continue;
          tile_edges.clear();
          std::size_t tile_pairs = 0;
          for_each_pair(tiles.tile(t), [&](std::size_t i, std::size_t j) {
            const float mi = static_cast<float>(estimator_.mi(
                ranks_.ranks(i), ranks_.ranks(j), scratch, config.kernel));
            ++tile_pairs;
            if (mi >= threshold_f) {
              tile_edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                        static_cast<std::uint32_t>(j), mi});
            }
          });
          writer.append_tile(t, tile_edges);
          pairs_computed.fetch_add(tile_pairs, std::memory_order_relaxed);
          edges_found.fetch_add(tile_edges.size(), std::memory_order_relaxed);
          const std::size_t completed =
              tiles_done.fetch_add(1, std::memory_order_acq_rel) + 1;
          if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress(completed, tiles.count());
          }
        }
      });

  writer.close();

  // All tiles journaled: assemble the network from the (now complete) file
  // so the result is exactly what a resume would produce.
  const CheckpointState final_state = load_checkpoint(checkpoint_path);
  TINGE_ENSURES(final_state.completed_tiles().size() == tiles.count());
  GeneNetwork network(ranks_.gene_names());
  const std::vector<Edge> edges = final_state.all_edges();
  network.add_edges(edges);
  network.finalize();
  std::remove(checkpoint_path.c_str());

  if (stats != nullptr) {
    stats->pairs_computed = pairs_computed.load();
    stats->edges_emitted = network.n_edges();
    stats->tiles = tiles.count();
    stats->seconds = watch.seconds();
  }
  return network;
}

GeneNetwork MiEngine::compute_network_teamed(double threshold,
                                             const TingeConfig& config,
                                             par::ThreadPool& pool,
                                             int team_size,
                                             EngineStats* stats) const {
  config.validate();
  TINGE_EXPECTS(team_size >= 1);
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  TINGE_EXPECTS(threads % team_size == 0);
  const int n_teams = threads / team_size;

  struct ThreadState {
    std::vector<Edge> edges;
    std::size_t pairs = 0;
  };
  par::PerThread<ThreadState> state(threads);

  // Per-team coordination: the leader claims the next tile from the global
  // counter; a team barrier publishes it to the members; every member then
  // walks the tile's pairs and takes those congruent to its member id.
  std::atomic<std::size_t> next_tile{0};
  struct alignas(kSimdAlignment) TeamSlot {
    std::size_t tile = 0;
    std::unique_ptr<par::SpinBarrier> barrier;
  };
  std::vector<TeamSlot> teams(static_cast<std::size_t>(n_teams));
  for (auto& team : teams)
    team.barrier = std::make_unique<par::SpinBarrier>(team_size);

  pool.run(threads, [&](int tid, int /*width*/) {
    const int team_id = tid / team_size;
    const int member = tid % team_size;
    TeamSlot& team = teams[static_cast<std::size_t>(team_id)];
    JointHistogram scratch = estimator_.make_scratch();
    ThreadState& local = state.local(tid);
    const float threshold_f = static_cast<float>(threshold);

    while (true) {
      if (member == 0)
        team.tile = next_tile.fetch_add(1, std::memory_order_relaxed);
      team.barrier->arrive_and_wait();
      const std::size_t t = team.tile;
      if (t >= tiles.count()) break;
      std::size_t pair_index = 0;
      for_each_pair(tiles.tile(t), [&](std::size_t i, std::size_t j) {
        if (static_cast<int>(pair_index++ % static_cast<std::size_t>(
                                 team_size)) != member)
          return;
        const double mi = estimator_.mi(ranks_.ranks(i), ranks_.ranks(j),
                                        scratch, config.kernel);
        ++local.pairs;
        const float mi_f = static_cast<float>(mi);
        if (mi_f >= threshold_f) {
          local.edges.push_back(Edge{static_cast<std::uint32_t>(i),
                                     static_cast<std::uint32_t>(j), mi_f});
        }
      });
      // Second barrier keeps members in lock-step with the leader's next
      // claim (the leader must not overwrite team.tile early).
      team.barrier->arrive_and_wait();
    }
  });

  GeneNetwork network(ranks_.gene_names());
  std::size_t pairs = 0;
  for (int t = 0; t < state.size(); ++t) {
    network.add_edges(state.local(t).edges);
    pairs += state.local(t).pairs;
  }
  network.finalize();

  if (stats != nullptr) {
    stats->pairs_computed = pairs;
    stats->edges_emitted = network.n_edges();
    stats->tiles = tiles.count();
    stats->seconds = watch.seconds();
  }
  TINGE_ENSURES(pairs == tiles.total_pairs());
  return network;
}

std::vector<float> MiEngine::compute_dense(const TingeConfig& config,
                                           par::ThreadPool& pool,
                                           EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  TINGE_EXPECTS(n <= 1u << 15);  // dense mode is for study-sized problems
  std::vector<float> mi_matrix(n * n, 0.0f);
  const TileSet tiles(n, config.tile_size);
  const int threads = config.threads > 0
                          ? std::min(config.threads, pool.max_threads())
                          : pool.max_threads();
  std::atomic<std::size_t> pairs{0};

  par::parallel_for(
      pool, threads, 0, tiles.count(), 1, config.schedule,
      [&](std::size_t tile_begin, std::size_t tile_end, int /*tid*/) {
        JointHistogram scratch = estimator_.make_scratch();
        std::size_t local_pairs = 0;
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          for_each_pair(tiles.tile(t), [&](std::size_t i, std::size_t j) {
            const double mi = estimator_.mi(ranks_.ranks(i), ranks_.ranks(j),
                                            scratch, config.kernel);
            const float mi_f = static_cast<float>(mi);
            mi_matrix[i * n + j] = mi_f;
            mi_matrix[j * n + i] = mi_f;
            ++local_pairs;
          });
        }
        pairs.fetch_add(local_pairs, std::memory_order_relaxed);
      });

  if (stats != nullptr) {
    stats->pairs_computed = pairs.load();
    stats->edges_emitted = 0;
    stats->tiles = tiles.count();
    stats->seconds = watch.seconds();
  }
  return mi_matrix;
}

}  // namespace tinge
