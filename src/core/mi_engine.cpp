#include "core/mi_engine.h"

#include <algorithm>
#include <cstdio>

#include "core/checkpoint.h"
#include "core/sweep.h"
#include "parallel/topology.h"
#include "util/timer.h"

namespace tinge {

namespace {

// Every compute_* method is a configuration of run_sweep (core/sweep.h):
// the same triangular plan and panel kernel, differing only in scheduler
// options and sink. The executor owns the tile/panel loops, the teamed
// claiming protocol and the resume filter; the methods below just wire a
// plan + scheduler + sink together and finalize the stats.

SweepOptions sweep_options(const TingeConfig& config,
                           const par::ThreadPool& pool) {
  SweepOptions options;
  options.threads = config.threads > 0
                        ? std::min(config.threads, pool.max_threads())
                        : pool.max_threads();
  options.schedule = config.schedule;
  options.team_size = config.team_size;
  return options;
}

std::uint64_t total_pairs_swept(const std::vector<SweepCounters>& counters) {
  std::uint64_t pairs = 0;
  for (const SweepCounters& c : counters) pairs += c.pairs;
  return pairs;
}

// Detected NUMA shape of the host, cached — sysfs does not change mid-run.
const par::NumaLayout& cached_numa_layout() {
  static const par::NumaLayout layout = par::detect_numa_layout();
  return layout;
}

// Memory nodes the pass schedules for: 1 when the knob is off or the host
// has a single node.
int resolved_numa_nodes(const TingeConfig& config) {
  if (config.numa == KnobMode::Off) return 1;
  return cached_numa_layout().nodes;
}

// Dispatches run_sweep over the staged uint16 rows when available, the
// classic uint32 rows otherwise — the only place the engine's row-source
// choice is made. Staging is estimator-independent: the B-spline kernels
// index the same table rows either way and the generic fallback widens
// losslessly, so every statistic sees identical rank values.
template <typename Sink>
std::vector<SweepCounters> run_ranked_sweep(
    const SweepPlan& plan, const PairStatistic& estimator,
    const RankedMatrix& ranks, const StagedRankMatrix* staged,
    const PanelPlan& panels, par::ThreadPool* pool,
    const SweepOptions& options, Sink& sink) {
  if (staged != nullptr) {
    return run_sweep(
        plan, estimator, [staged](std::size_t g) { return staged->row(g); },
        panels, pool, options, sink);
  }
  return run_sweep(
      plan, estimator,
      [&ranks](std::size_t g) { return ranks.ranks(g).data(); }, panels, pool,
      options, sink);
}

}  // namespace

void fill_staged_first_touch(StagedRankMatrix& staged,
                             const RankedMatrix& ranks, par::ThreadPool& pool,
                             int threads, int nodes) {
  const std::size_t n = ranks.n_genes();
  if (threads <= 1) {
    staged.fill_rows(ranks, 0, n);
    return;
  }
  const auto node_begin = [nodes](std::size_t count, int d) {
    // First index of node d's block: smallest i with i * nodes / count >= d.
    return (static_cast<std::size_t>(d) * count +
            static_cast<std::size_t>(nodes) - 1) /
           static_cast<std::size_t>(nodes);
  };
  const auto t = static_cast<std::size_t>(threads);
  pool.run(threads, [&](int tid, int /*width*/) {
    if (t < static_cast<std::size_t>(nodes)) {
      // Fewer threads than nodes: the tid block partition below would map
      // some nodes to no thread at all, leaving their gene blocks
      // uninitialized. Hand out whole node blocks round-robin instead —
      // every gene row is filled exactly once; some rows merely fault in
      // away from the node their tiles prefer.
      for (int d = tid; d < nodes; d += threads)
        staged.fill_rows(ranks, node_begin(n, d), node_begin(n, d + 1));
      return;
    }
    const int d = numa_node_of_gene(static_cast<std::size_t>(tid), t, nodes);
    const std::size_t tid0 = node_begin(t, d);
    const std::size_t tid1 = node_begin(t, d + 1);
    const std::size_t g0 = node_begin(n, d);
    const std::size_t g1 = node_begin(n, d + 1);
    const std::size_t r = static_cast<std::size_t>(tid) - tid0;
    const std::size_t node_threads = tid1 - tid0;
    const std::size_t genes = g1 - g0;
    staged.fill_rows(ranks, g0 + genes * r / node_threads,
                     g0 + genes * (r + 1) / node_threads);
  });
}

EngineStats engine_stats_from_metrics(const obs::MetricsSnapshot& snapshot) {
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = snapshot.counters.find(name);
    return it != snapshot.counters.end() ? it->second : 0;
  };
  EngineStats stats;
  stats.pairs_resumed = counter("engine.pairs_resumed");
  stats.pairs_computed = counter("engine.pairs_computed") + stats.pairs_resumed;
  stats.edges_emitted = counter("engine.edges_emitted");
  stats.tiles_resumed = counter("engine.tiles_resumed");
  stats.tiles = counter("engine.tiles_completed") + stats.tiles_resumed;
  stats.panels_swept = counter("engine.panels_swept");
  const auto gauge = [&](const char* name) -> double {
    const auto it = snapshot.gauges.find(name);
    return it != snapshot.gauges.end() ? it->second : 0.0;
  };
  stats.seconds = gauge("engine.seconds");
  stats.panel_width = static_cast<int>(gauge("engine.panel_width"));
  for (const auto& [name, value] : snapshot.counters) {
    std::size_t tid = 0;
    char what[16] = {0};
    if (std::sscanf(name.c_str(), "engine.thread.%zu.%15s", &tid, what) != 2)
      continue;
    auto& sink = std::string_view(what) == "tiles" ? stats.tiles_per_thread
                                                   : stats.pairs_per_thread;
    if (sink.size() <= tid) sink.resize(tid + 1, 0);
    sink[tid] += value;
  }
  return stats;
}

MiEngine::MiEngine(const PairStatistic& statistic, const RankedMatrix& ranks)
    : statistic_(statistic), ranks_(ranks) {
  TINGE_EXPECTS(statistic.n_samples() == ranks.n_samples());
  TINGE_EXPECTS(ranks.n_genes() >= 2);
}

MiEngine::MiEngine(const BsplineMi& estimator, const RankedMatrix& ranks)
    : owned_statistic_(std::make_unique<BsplineStat>(estimator)),
      statistic_(*owned_statistic_),
      ranks_(ranks) {
  TINGE_EXPECTS(estimator.n_samples() == ranks.n_samples());
  TINGE_EXPECTS(ranks.n_genes() >= 2);
}

const StagedRankMatrix* MiEngine::staged_ranks(const TingeConfig& config,
                                               par::ThreadPool& pool,
                                               int threads,
                                               int numa_nodes) const {
  if (!config.stage_ranks || !StagedRankMatrix::can_stage(ranks_.n_samples()))
    return nullptr;
  std::call_once(staged_once_, [&] {
    auto staged = std::make_unique<StagedRankMatrix>(ranks_.n_genes(),
                                                     ranks_.n_samples());
    fill_staged_first_touch(*staged, ranks_, pool, threads, numa_nodes);
    staged_ = std::move(staged);
  });
  return staged_.get();
}

GeneNetwork MiEngine::compute_network(double threshold,
                                      const TingeConfig& config,
                                      par::ThreadPool& pool,
                                      EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const SweepPlan plan =
      SweepPlan::triangular(0, ranks_.n_genes(), config.tile_size);
  const PanelPlan panels = statistic_.plan(config);
  SweepOptions options = sweep_options(config, pool);

  const int numa_nodes = resolved_numa_nodes(config);
  NumaTilePlan numa_plan;
  if (numa_nodes > 1 && options.team_size <= 1 && options.threads > 1) {
    numa_plan =
        make_numa_tile_plan(plan, ranks_.n_genes(), numa_nodes,
                            options.threads, &cached_numa_layout());
    options.numa = &numa_plan;
  }
  const StagedRankMatrix* staged =
      staged_ranks(config, pool, options.threads, numa_nodes);

  EdgeSink sink(threshold, options.threads);
  const std::vector<SweepCounters> counters = run_ranked_sweep(
      plan, statistic_, ranks_, staged, panels, &pool, options, sink);

  GeneNetwork network(ranks_.gene_names());
  sink.drain_into(network);
  network.finalize();

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       network.n_edges(), /*tiles_resumed=*/0,
                       /*pairs_resumed=*/0);
  TINGE_ENSURES(total_pairs_swept(counters) == plan.total_pairs());
  return network;
}

GeneNetwork MiEngine::compute_network_checkpointed(
    double threshold, const TingeConfig& config, par::ThreadPool& pool,
    const std::string& checkpoint_path, EngineStats* stats,
    const std::function<void(std::size_t, std::size_t)>& progress) const {
  config.validate();
  const Stopwatch watch;
  const SweepPlan plan =
      SweepPlan::triangular(0, ranks_.n_genes(), config.tile_size);
  const PanelPlan panels = statistic_.plan(config);
  SweepOptions options = sweep_options(config, pool);

  const RunSignature signature{
      ranks_.n_genes(),
      ranks_.n_samples(),
      config.tile_size,
      statistic_.signature_bins(),
      statistic_.signature_order(),
      threshold,
      static_cast<std::uint32_t>(statistic_.kind())};
  const ResumeState resume =
      load_resume_state(checkpoint_path, signature, plan);
  options.skip = &resume.done;

  const int numa_nodes = resolved_numa_nodes(config);
  NumaTilePlan numa_plan;
  if (numa_nodes > 1 && options.team_size <= 1 && options.threads > 1) {
    numa_plan =
        make_numa_tile_plan(plan, ranks_.n_genes(), numa_nodes,
                            options.threads, &cached_numa_layout());
    options.numa = &numa_plan;
  }
  const StagedRankMatrix* staged =
      staged_ranks(config, pool, options.threads, numa_nodes);

  // Rewrite the journal fresh (drops any torn tail), replaying prior tiles.
  CheckpointWriter writer(checkpoint_path, signature);
  for (const TileRecord& record : resume.records)
    writer.append_tile(record.tile_index, record.edges);

  const std::size_t interval =
      config.progress_tile_interval > 0
          ? config.progress_tile_interval
          : std::max<std::size_t>(1, plan.count() / 128);
  JournalSink sink(writer, threshold, options.threads,
                   {progress, interval, plan.count(), resume.records.size()});
  const std::vector<SweepCounters> counters = run_ranked_sweep(
      plan, statistic_, ranks_, staged, panels, &pool, options, sink);
  writer.close();

  // All tiles journaled: assemble the network from the (now complete) file
  // so the result is exactly what a resume would produce.
  const CheckpointState final_state = load_checkpoint(checkpoint_path);
  TINGE_ENSURES(final_state.completed_tiles().size() == plan.count());
  GeneNetwork network(ranks_.gene_names());
  network.add_edges(final_state.all_edges());
  network.finalize();
  std::remove(checkpoint_path.c_str());

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       network.n_edges(), resume.records.size(),
                       resume.pairs_resumed);
  return network;
}

GeneNetwork MiEngine::compute_network_teamed(double threshold,
                                             const TingeConfig& config,
                                             par::ThreadPool& pool,
                                             int team_size,
                                             EngineStats* stats) const {
  TINGE_EXPECTS(team_size >= 1);
  TingeConfig teamed = config;
  teamed.team_size = team_size;
  return compute_network(threshold, teamed, pool, stats);
}

std::vector<float> MiEngine::compute_dense(const TingeConfig& config,
                                           par::ThreadPool& pool,
                                           EngineStats* stats) const {
  config.validate();
  const Stopwatch watch;
  const std::size_t n = ranks_.n_genes();
  TINGE_EXPECTS(n <= 1u << 15);  // dense mode is for study-sized problems
  std::vector<float> mi_matrix(n * n, 0.0f);
  const SweepPlan plan = SweepPlan::triangular(0, n, config.tile_size);
  const PanelPlan panels = statistic_.plan(config);
  SweepOptions options = sweep_options(config, pool);

  const int numa_nodes = resolved_numa_nodes(config);
  NumaTilePlan numa_plan;
  if (numa_nodes > 1 && options.team_size <= 1 && options.threads > 1) {
    numa_plan = make_numa_tile_plan(plan, n, numa_nodes, options.threads,
                                    &cached_numa_layout());
    options.numa = &numa_plan;
  }
  const StagedRankMatrix* staged =
      staged_ranks(config, pool, options.threads, numa_nodes);

  DenseSink sink(mi_matrix.data(), n);
  const std::vector<SweepCounters> counters = run_ranked_sweep(
      plan, statistic_, ranks_, staged, panels, &pool, options, sink);

  finalize_engine_pass(stats, panels, plan.count(), watch.seconds(), counters,
                       /*edges_emitted=*/0, /*tiles_resumed=*/0,
                       /*pairs_resumed=*/0);
  return mi_matrix;
}

}  // namespace tinge
