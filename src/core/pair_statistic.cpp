#include "core/pair_statistic.h"

#include <stdexcept>
#include <string>

#include "core/config.h"
#include "core/sweep.h"
#include "data/expression_matrix.h"
#include "mi/correlation.h"
#include "mi/histogram_mi.h"
#include "mi/ksg_mi.h"
#include "mi/phi_mixing.h"
#include "preprocess/rank_transform.h"
#include "util/contracts.h"
#include "util/str.h"

namespace tinge {

// --- estimator names --------------------------------------------------------

namespace {

constexpr EstimatorKind kAllEstimators[] = {
    EstimatorKind::Bspline,  EstimatorKind::Histogram, EstimatorKind::Ksg,
    EstimatorKind::Pearson,  EstimatorKind::Spearman,  EstimatorKind::Phi,
};

}  // namespace

const char* estimator_name(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::Bspline: return "bspline";
    case EstimatorKind::Histogram: return "histogram";
    case EstimatorKind::Ksg: return "ksg";
    case EstimatorKind::Pearson: return "pearson";
    case EstimatorKind::Spearman: return "spearman";
    case EstimatorKind::Phi: return "phi";
  }
  return "?";
}

EstimatorKind parse_estimator(std::string_view name) {
  for (const EstimatorKind kind : kAllEstimators)
    if (name == estimator_name(kind)) return kind;
  std::string accepted;
  for (const EstimatorKind kind : kAllEstimators) {
    if (!accepted.empty()) accepted += '|';
    accepted += estimator_name(kind);
  }
  throw std::invalid_argument(strprintf(
      "unknown estimator '%.*s' (expected %s)",
      static_cast<int>(name.size()), name.data(), accepted.c_str()));
}

// --- concept defaults -------------------------------------------------------

PairScratch::~PairScratch() = default;
PairStatistic::~PairStatistic() = default;

PanelPlan PairStatistic::plan(const TingeConfig& /*config*/) const {
  // Width-1 scalar panels: the executor's panel loop degenerates to one
  // eval_pair per pair. Only B-spline overrides with measured SIMD panels.
  return PanelPlan{MiKernel::Scalar, 1, name(), false, false, name()};
}

std::unique_ptr<PairScratch> PairStatistic::make_scratch() const {
  return std::make_unique<PairScratch>();
}

void PairStatistic::eval_panel(const std::uint32_t* x,
                               const std::uint32_t* const* ys,
                               std::size_t width, std::size_t i,
                               std::size_t j0, const PanelOptions& /*options*/,
                               PairScratch& scratch, double* out) const {
  for (std::size_t p = 0; p < width; ++p)
    out[p] = eval_pair(x, ys[p], i, j0 + p, scratch);
}

void PairStatistic::eval_panel(const std::uint16_t* x,
                               const std::uint16_t* const* ys,
                               std::size_t width, std::size_t i,
                               std::size_t j0, const PanelOptions& /*options*/,
                               PairScratch& scratch, double* out) const {
  const std::size_t m = n_samples();
  scratch.wide_x.resize(m);
  scratch.wide_y.resize(m);
  for (std::size_t s = 0; s < m; ++s) scratch.wide_x[s] = x[s];
  for (std::size_t p = 0; p < width; ++p) {
    for (std::size_t s = 0; s < m; ++s) scratch.wide_y[s] = ys[p][s];
    out[p] = eval_pair(scratch.wide_x.data(), scratch.wide_y.data(), i, j0 + p,
                       scratch);
  }
}

double PairStatistic::eval_null_pair(const std::uint32_t* x,
                                     const std::uint32_t* y,
                                     PairScratch& scratch) const {
  return eval_pair(x, y, 0, 0, scratch);
}

// --- B-spline ---------------------------------------------------------------

namespace {

struct BsplineScratch final : PairScratch {
  explicit BsplineScratch(JointHistogram h) : hist(std::move(h)) {}
  JointHistogram hist;
};

}  // namespace

PanelPlan BsplineStat::plan(const TingeConfig& config) const {
  return plan_panels(*mi_, config);
}

std::unique_ptr<PairScratch> BsplineStat::make_scratch() const {
  return std::make_unique<BsplineScratch>(mi_->make_scratch());
}

double BsplineStat::eval_pair(const std::uint32_t* x, const std::uint32_t* y,
                              std::size_t /*i*/, std::size_t /*j*/,
                              PairScratch& scratch) const {
  const std::size_t m = mi_->n_samples();
  return mi_->mi({x, m}, {y, m}, static_cast<BsplineScratch&>(scratch).hist,
                 kernel_);
}

void BsplineStat::eval_panel(const std::uint32_t* x,
                             const std::uint32_t* const* ys, std::size_t width,
                             std::size_t /*i*/, std::size_t /*j0*/,
                             const PanelOptions& options, PairScratch& scratch,
                             double* out) const {
  mi_->mi_panel(x, ys, width, static_cast<BsplineScratch&>(scratch).hist,
                options, out);
}

void BsplineStat::eval_panel(const std::uint16_t* x,
                             const std::uint16_t* const* ys, std::size_t width,
                             std::size_t /*i*/, std::size_t /*j0*/,
                             const PanelOptions& options, PairScratch& scratch,
                             double* out) const {
  mi_->mi_panel(x, ys, width, static_cast<BsplineScratch&>(scratch).hist,
                options, out);
}

double BsplineStat::eval_null_pair(const std::uint32_t* x,
                                   const std::uint32_t* y,
                                   PairScratch& scratch) const {
  const std::size_t m = mi_->n_samples();
  return mi_->mi({x, m}, {y, m}, static_cast<BsplineScratch&>(scratch).hist,
                 kernel_);
}

// --- generic rank-based statistics ------------------------------------------

namespace {

/// Shared base for the non-B-spline statistics: samples-and-bins state plus
/// the uniform checkpoint signature (bins = the discretization knob, order
/// unused).
class RankStatBase : public PairStatistic {
 public:
  RankStatBase(EstimatorKind kind, std::size_t m, int bins)
      : PairStatistic(kind), m_(m), bins_(bins) {}

  std::size_t n_samples() const override { return m_; }
  std::uint32_t signature_bins() const override {
    return static_cast<std::uint32_t>(bins_);
  }

 protected:
  std::size_t m_;
  int bins_;
};

struct FloatScratch final : PairScratch {
  std::vector<float> fx, fy;
};

void ranks_to_float(const std::uint32_t* ranks, std::size_t m,
                    std::vector<float>& out) {
  out.resize(m);
  for (std::size_t s = 0; s < m; ++s) out[s] = static_cast<float>(ranks[s]);
}

class HistogramStat final : public RankStatBase {
 public:
  HistogramStat(std::size_t m, int bins)
      : RankStatBase(EstimatorKind::Histogram, m, bins) {}

  double eval_pair(const std::uint32_t* x, const std::uint32_t* y,
                   std::size_t /*i*/, std::size_t /*j*/,
                   PairScratch& /*scratch*/) const override {
    return histogram_mi_from_ranks({x, m_}, {y, m_}, bins_);
  }
};

class KsgStat final : public RankStatBase {
 public:
  static constexpr int kNeighbours = 4;

  KsgStat(std::size_t m, int bins)
      : RankStatBase(EstimatorKind::Ksg, m, bins) {}

  std::unique_ptr<PairScratch> make_scratch() const override {
    return std::make_unique<FloatScratch>();
  }
  double eval_pair(const std::uint32_t* x, const std::uint32_t* y,
                   std::size_t /*i*/, std::size_t /*j*/,
                   PairScratch& scratch) const override {
    auto& fs = static_cast<FloatScratch&>(scratch);
    ranks_to_float(x, m_, fs.fx);
    ranks_to_float(y, m_, fs.fy);
    return ksg_mi(fs.fx, fs.fy, kNeighbours);
  }
};

class SpearmanStat final : public RankStatBase {
 public:
  SpearmanStat(std::size_t m, int bins)
      : RankStatBase(EstimatorKind::Spearman, m, bins) {}

  std::unique_ptr<PairScratch> make_scratch() const override {
    return std::make_unique<FloatScratch>();
  }
  double eval_pair(const std::uint32_t* x, const std::uint32_t* y,
                   std::size_t /*i*/, std::size_t /*j*/,
                   PairScratch& scratch) const override {
    // Pearson on the stable-order ranks: equal to Spearman on tie-free
    // profiles, and consistent with the rank rows every other statistic
    // sees.
    auto& fs = static_cast<FloatScratch&>(scratch);
    ranks_to_float(x, m_, fs.fx);
    ranks_to_float(y, m_, fs.fy);
    return correlation_score(pearson_correlation(fs.fx, fs.fy));
  }
};

class PhiStat final : public RankStatBase {
 public:
  PhiStat(std::size_t m, int bins)
      : RankStatBase(EstimatorKind::Phi, m, bins) {}

  double eval_pair(const std::uint32_t* x, const std::uint32_t* y,
                   std::size_t /*i*/, std::size_t /*j*/,
                   PairScratch& /*scratch*/) const override {
    return phi_mixing_symmetric({x, m_}, {y, m_}, bins_);
  }
};

class PearsonStat final : public RankStatBase {
 public:
  PearsonStat(const ExpressionMatrix& raw, int bins)
      : RankStatBase(EstimatorKind::Pearson, raw.n_samples(), bins),
        raw_(&raw) {}

  std::unique_ptr<PairScratch> make_scratch() const override {
    return std::make_unique<FloatScratch>();
  }
  double eval_pair(const std::uint32_t* /*x*/, const std::uint32_t* /*y*/,
                   std::size_t i, std::size_t j,
                   PairScratch& /*scratch*/) const override {
    return correlation_score(pearson_correlation(raw_->row(i), raw_->row(j)));
  }
  /// The null feeds rank permutations, not gene indices: score them as
  /// profiles (|Pearson| of two random permutations == a Spearman null,
  /// the natural permutation null for a correlation network).
  double eval_null_pair(const std::uint32_t* x, const std::uint32_t* y,
                        PairScratch& scratch) const override {
    auto& fs = static_cast<FloatScratch&>(scratch);
    ranks_to_float(x, m_, fs.fx);
    ranks_to_float(y, m_, fs.fy);
    return correlation_score(pearson_correlation(fs.fx, fs.fy));
  }

 private:
  const ExpressionMatrix* raw_;
};

}  // namespace

// --- factory ----------------------------------------------------------------

std::unique_ptr<PairStatistic> make_pair_statistic(
    const TingeConfig& config, const RankedMatrix& ranked,
    const ExpressionMatrix* raw) {
  const std::size_t m = ranked.n_samples();
  switch (config.estimator) {
    case EstimatorKind::Bspline:
      return std::make_unique<BsplineStat>(
          BsplineMi(config.bins, config.spline_order, m), config.kernel);
    case EstimatorKind::Histogram:
      return std::make_unique<HistogramStat>(m, config.bins);
    case EstimatorKind::Ksg:
      return std::make_unique<KsgStat>(m, config.bins);
    case EstimatorKind::Pearson:
      TINGE_EXPECTS(raw != nullptr);
      TINGE_EXPECTS(raw->n_samples() == m);
      TINGE_EXPECTS(raw->n_genes() == ranked.n_genes());
      return std::make_unique<PearsonStat>(*raw, config.bins);
    case EstimatorKind::Spearman:
      return std::make_unique<SpearmanStat>(m, config.bins);
    case EstimatorKind::Phi:
      return std::make_unique<PhiStat>(m, config.bins);
  }
  throw ContractViolation("make_pair_statistic: unknown estimator kind");
}

}  // namespace tinge
