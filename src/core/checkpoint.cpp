#include "core/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "data/tsv_io.h"  // IoError
#include "obs/metrics.h"
#include "util/contracts.h"

namespace tinge {

namespace {
constexpr char kMagic[4] = {'T', 'N', 'G', 'C'};
// Version 2 appended the estimator field to the packed signature. Version 1
// journals (the pinned-bytes compatibility surface) predate estimator
// selection: their 40-byte signature loads as estimator 0 — B-spline, the
// value every pre-estimator journal implicitly carried.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersion1 = 1;

struct PackedSignatureV1 {
  std::uint64_t n_genes;
  std::uint64_t n_samples;
  std::uint64_t tile_size;
  std::uint32_t bins;
  std::uint32_t order;
  double threshold;
};
static_assert(sizeof(PackedSignatureV1) == 40);

struct PackedSignature {
  std::uint64_t n_genes;
  std::uint64_t n_samples;
  std::uint64_t tile_size;
  std::uint32_t bins;
  std::uint32_t order;
  double threshold;
  std::uint32_t estimator;
  std::uint32_t reserved;  ///< keeps the struct padding explicit (zeroed)
};
static_assert(sizeof(PackedSignature) == 48);

PackedSignature pack(const RunSignature& s) {
  return PackedSignature{s.n_genes, s.n_samples, s.tile_size,
                         s.bins,    s.order,     s.threshold,
                         s.estimator, 0};
}

RunSignature unpack(const PackedSignature& p) {
  RunSignature s;
  s.n_genes = p.n_genes;
  s.n_samples = p.n_samples;
  s.tile_size = p.tile_size;
  s.bins = p.bins;
  s.order = p.order;
  s.threshold = p.threshold;
  s.estimator = p.estimator;
  return s;
}

struct PackedEdge {
  std::uint32_t u;
  std::uint32_t v;
  float weight;
};
static_assert(sizeof(PackedEdge) == 12);
}  // namespace

struct CheckpointWriter::Impl {
  std::FILE* file = nullptr;
  std::mutex mutex;
  std::string path;
  // Journal-event tallies, published to the process-wide registry when the
  // journal closes (one registry touch per journal, none per tile).
  std::uint64_t tiles_appended = 0;
  std::uint64_t edges_appended = 0;
  std::uint64_t bytes_written = 0;
};

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const RunSignature& signature)
    : impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  impl_->file = std::fopen(path.c_str(), "wb");
  if (impl_->file == nullptr)
    throw IoError("cannot create checkpoint " + path);
  const PackedSignature packed = pack(signature);
  if (std::fwrite(kMagic, 1, sizeof(kMagic), impl_->file) != sizeof(kMagic) ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, impl_->file) != 1 ||
      std::fwrite(&packed, sizeof(packed), 1, impl_->file) != 1) {
    std::fclose(impl_->file);
    impl_->file = nullptr;
    throw IoError("cannot write checkpoint header to " + path);
  }
  std::fflush(impl_->file);
}

CheckpointWriter::~CheckpointWriter() { close(); }

void CheckpointWriter::append_tile(std::size_t tile_index,
                                   std::span<const Edge> edges) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  TINGE_EXPECTS(impl_->file != nullptr);
  const auto index = static_cast<std::uint64_t>(tile_index);
  const auto count = static_cast<std::uint32_t>(edges.size());
  bool ok = std::fwrite(&index, sizeof(index), 1, impl_->file) == 1 &&
            std::fwrite(&count, sizeof(count), 1, impl_->file) == 1;
  for (const Edge& e : edges) {
    if (!ok) break;
    const PackedEdge packed{e.u, e.v, e.weight};
    ok = std::fwrite(&packed, sizeof(packed), 1, impl_->file) == 1;
  }
  if (!ok) throw IoError("checkpoint append failed: " + impl_->path);
  std::fflush(impl_->file);
  ++impl_->tiles_appended;
  impl_->edges_appended += edges.size();
  impl_->bytes_written +=
      sizeof(index) + sizeof(count) + edges.size() * sizeof(PackedEdge);
}

void CheckpointWriter::sync() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->file == nullptr) return;
  if (std::fflush(impl_->file) != 0 || ::fsync(::fileno(impl_->file)) != 0)
    throw IoError("checkpoint sync failed: " + impl_->path);
}

void CheckpointWriter::close() {
  if (impl_ && impl_->file != nullptr) {
    // Best-effort final sync: close() runs from destructors (often during
    // exception unwinding), so a failed fsync must not throw here.
    std::fflush(impl_->file);
    ::fsync(::fileno(impl_->file));
    std::fclose(impl_->file);
    impl_->file = nullptr;
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.counter("checkpoint.journals_written").add(1);
    registry.counter("checkpoint.tiles_appended").add(impl_->tiles_appended);
    registry.counter("checkpoint.edges_appended").add(impl_->edges_appended);
    registry.counter("checkpoint.bytes_written").add(impl_->bytes_written);
  }
}

CheckpointState load_checkpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw IoError("cannot open checkpoint " + path);
  const auto fail = [&](const std::string& what) {
    std::fclose(file);
    throw IoError(what + ": " + path);
  };

  char magic[4];
  std::uint32_t version = 0;
  PackedSignature packed{};
  if (std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    fail("not a TNGC checkpoint");
  if (std::fread(&version, sizeof(version), 1, file) != 1 ||
      (version != kVersion && version != kVersion1))
    fail("unsupported checkpoint version");
  if (version == kVersion1) {
    PackedSignatureV1 v1{};
    if (std::fread(&v1, sizeof(v1), 1, file) != 1)
      fail("truncated checkpoint header");
    packed = PackedSignature{v1.n_genes, v1.n_samples, v1.tile_size,
                             v1.bins,    v1.order,     v1.threshold,
                             0,          0};
  } else if (std::fread(&packed, sizeof(packed), 1, file) != 1) {
    fail("truncated checkpoint header");
  }

  CheckpointState state;
  state.signature = unpack(packed);
  std::vector<bool> seen_tile;
  while (true) {
    std::uint64_t tile_index = 0;
    std::uint32_t count = 0;
    if (std::fread(&tile_index, sizeof(tile_index), 1, file) != 1) break;
    if (std::fread(&count, sizeof(count), 1, file) != 1) {
      state.tail_truncated = true;
      break;
    }
    TileRecord record;
    record.tile_index = tile_index;
    // `count` is untrusted: a record torn mid-append (or mid-header) can
    // carry garbage here, and reserving ~2^32 edges up front would OOM the
    // load that was supposed to *tolerate* the torn tail. Cap the reserve;
    // a genuinely huge record still works through push_back growth.
    record.edges.reserve(std::min<std::uint32_t>(count, 1u << 20));
    bool torn = false;
    for (std::uint32_t i = 0; i < count; ++i) {
      PackedEdge e{};
      if (std::fread(&e, sizeof(e), 1, file) != 1) {
        torn = true;
        break;
      }
      record.edges.push_back(Edge{e.u, e.v, e.weight});
    }
    if (torn) {
      state.tail_truncated = true;
      break;
    }
    if (tile_index < (1u << 30)) {
      if (seen_tile.size() <= tile_index)
        seen_tile.resize(static_cast<std::size_t>(tile_index) + 1, false);
      if (seen_tile[static_cast<std::size_t>(tile_index)]) continue;
      seen_tile[static_cast<std::size_t>(tile_index)] = true;
    }
    state.records.push_back(std::move(record));
  }
  std::fclose(file);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("checkpoint.loads").add(1);
  registry.counter("checkpoint.tiles_loaded").add(state.records.size());
  if (state.tail_truncated) registry.counter("checkpoint.torn_tails").add(1);
  return state;
}

std::vector<std::uint64_t> CheckpointState::completed_tiles() const {
  std::vector<std::uint64_t> tiles;
  tiles.reserve(records.size());
  for (const TileRecord& record : records) tiles.push_back(record.tile_index);
  std::sort(tiles.begin(), tiles.end());
  tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());
  return tiles;
}

std::vector<Edge> CheckpointState::all_edges() const {
  std::vector<Edge> edges;
  for (const TileRecord& record : records)
    edges.insert(edges.end(), record.edges.begin(), record.edges.end());
  return edges;
}

bool checkpoint_matches(const std::string& path, const RunSignature& signature) {
  try {
    return load_checkpoint(path).signature == signature;
  } catch (const IoError&) {
    return false;
  }
}

}  // namespace tinge
