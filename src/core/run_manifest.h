// The run manifest: one stable JSON document per pipeline run.
//
// Serializes everything a later reader needs to understand what the run
// did without re-running it: the configuration as requested, the kernel
// and panel width actually resolved, the per-stage wall-time tree, the
// tile-scheduler outcome (tiles/pairs per pool context, panel fill),
// thread-pool busy/idle accounting, and the run-scoped metrics delta
// (null draws, checkpoint journal events, cluster byte/message counts).
// The golden-run regression test pins this document's shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/network_builder.h"
#include "obs/json.h"

namespace tinge {

/// Bumped whenever a field is renamed or removed (additions are free).
inline constexpr int kManifestSchemaVersion = 1;

/// What a cluster (sharded) run records about its communication layer.
/// core cannot depend on the cluster module, so the cluster pipeline maps
/// its own stats into this struct before manifest assembly.
struct ClusterManifest {
  std::string transport;       ///< "inproc" or "tcp"
  std::string balance = "static";  ///< tile assignment: "static" or "lease"
  int ranks = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t messages = 0;
  std::vector<std::uint64_t> bytes_per_rank;
  std::vector<std::uint64_t> pairs_per_rank;
  std::vector<double> busy_seconds_per_rank;
  double imbalance = 1.0;  ///< max/min computed pairs across ranks
  /// Predicted static wall imbalance (max/min per-rank compute rate) and
  /// the actually observed one (max/min per-rank busy seconds). The
  /// elastic-balancing CI gate compares these: lease mode must deliver
  /// imbalance_post < imbalance_pre under an injected straggler.
  double imbalance_pre = 1.0;
  double imbalance_post = 1.0;
  // Lease-mode accounting (zero under static balancing).
  std::uint64_t leases_granted = 0;
  std::uint64_t steals = 0;
  std::uint64_t tiles_reclaimed = 0;
  std::vector<int> dead_ranks;
  double seconds = 0.0;
};

/// The "config" section of the manifest (exported for cluster-side
/// manifest assembly).
obs::Json config_to_json(const TingeConfig& config);

/// The "cluster" section of the manifest.
obs::Json cluster_to_json(const ClusterManifest& cluster);

/// Assembles the manifest document from a finished build. The caller may
/// have appended extra spans (e.g. the CLI's "output") and re-finished the
/// trace; whatever the tree holds at call time is serialized. When
/// `cluster` is non-null the manifest gains a "cluster" section.
obs::Json make_run_manifest(const BuildResult& result,
                            const TingeConfig& config,
                            const ClusterManifest* cluster = nullptr);

/// make_run_manifest + obs::write_json_file. Throws std::runtime_error on
/// I/O failure.
void write_run_manifest(const BuildResult& result, const TingeConfig& config,
                        const std::string& path);

}  // namespace tinge
