// The run manifest: one stable JSON document per pipeline run.
//
// Serializes everything a later reader needs to understand what the run
// did without re-running it: the configuration as requested, the kernel
// and panel width actually resolved, the per-stage wall-time tree, the
// tile-scheduler outcome (tiles/pairs per pool context, panel fill),
// thread-pool busy/idle accounting, and the run-scoped metrics delta
// (null draws, checkpoint journal events, cluster byte/message counts).
// The golden-run regression test pins this document's shape.
#pragma once

#include <string>

#include "core/config.h"
#include "core/network_builder.h"
#include "obs/json.h"

namespace tinge {

/// Bumped whenever a field is renamed or removed (additions are free).
inline constexpr int kManifestSchemaVersion = 1;

/// Assembles the manifest document from a finished build. The caller may
/// have appended extra spans (e.g. the CLI's "output") and re-finished the
/// trace; whatever the tree holds at call time is serialized.
obs::Json make_run_manifest(const BuildResult& result,
                            const TingeConfig& config);

/// make_run_manifest + obs::write_json_file. Throws std::runtime_error on
/// I/O failure.
void write_run_manifest(const BuildResult& result, const TingeConfig& config,
                        const std::string& path);

}  // namespace tinge
