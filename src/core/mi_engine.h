// The tiled, multithreaded all-pairs mutual-information engine — the
// component the paper parallelizes across the Phi's cores, hardware threads
// and vector units.
//
// Work decomposition: the upper-triangular pair space is tiled (core/tile.h);
// tiles are distributed over the thread pool with the configured schedule
// (dynamic by default, as in the paper). Each thread owns a joint-histogram
// scratch and an edge buffer; inside a tile each row gene's column range is
// swept as panels of B column genes by the row-reuse kernel
// (joint_entropy_panel in mi/bspline_kernels.h), sharing the row gene's
// table lookups across the panel. Edges at or
// above the significance threshold are kept; everything else is discarded
// immediately — at whole-genome scale the dense MI matrix (15,575^2 floats
// ~ 1 GB) is never materialized.
//
// Every compute_* method below is a thin configuration of the unified
// sweep executor (core/sweep.h, DESIGN.md §6d): one triangular tile plan,
// the scheduler options from the config (flat or teamed, plus the resume
// filter for checkpointed runs) and a sink (edge buffers, journal, dense
// matrix). The tile/panel loops, the teamed claiming protocol and the
// stats finalizer exist once, in the executor.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/config.h"
#include "core/pair_statistic.h"
#include "core/tile.h"
#include "device/perf_model.h"
#include "graph/network.h"
#include "mi/bspline_mi.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "preprocess/rank_transform.h"

namespace tinge {

/// Per-call accounting of one engine pass. All four engine paths (plain,
/// checkpointed, teamed, dense) populate every field through one shared
/// finalizer, which also publishes the same numbers as deltas into the
/// engine.* counters of obs::MetricsRegistry::global() — EngineStats is a
/// per-call view over the registry, not a second bookkeeping scheme
/// (engine_stats_from_metrics reads the numeric fields back out of a
/// registry delta).
struct EngineStats {
  /// Pairs the returned result covers — always the full n*(n-1)/2 of the
  /// pass, including pairs of tiles replayed from a checkpoint.
  std::size_t pairs_computed = 0;
  std::size_t edges_emitted = 0;
  std::size_t tiles = 0;
  /// Tiles loaded from a checkpoint journal instead of recomputed.
  std::size_t tiles_resumed = 0;
  /// Row-reuse panel sweeps executed (kernel invocations).
  std::size_t panels_swept = 0;
  double seconds = 0.0;

  /// Name of the kernel variant actually run (config Auto resolved through
  /// the one-shot microbenchmark; static string, never null).
  const char* kernel = "?";
  /// Name of the pair statistic the pass evaluated (static string).
  const char* estimator = "bspline";
  /// Panel width B actually used by the row-reuse sweep (>= 1).
  int panel_width = 0;

  /// Pairs of tiles that were replayed from a checkpoint (subset of
  /// pairs_computed; zero outside resumed runs).
  std::size_t pairs_resumed = 0;

  /// Tile-scheduler outcome: tiles completed per pool context (teamed runs
  /// attribute a tile to the team leader's tid). Sums to
  /// tiles - tiles_resumed.
  std::vector<std::uint64_t> tiles_per_thread;
  /// Pairs computed per pool context. Sums to pairs_computed - pairs_resumed.
  std::vector<std::uint64_t> pairs_per_thread;

  /// Per-tile wall-time distribution over the computed (not resumed) tiles:
  /// nearest-rank percentiles over every context's samples. Zero when no
  /// tile was computed. The p95/p50 ratio is the straggler diagnosis the
  /// lane scheduler acts on.
  std::uint64_t tiles_timed = 0;
  double tile_seconds_p50 = 0.0;
  double tile_seconds_p95 = 0.0;
  double tile_seconds_max = 0.0;

  /// One heterogeneous executor lane's outcome (empty outside --hetero
  /// runs). predicted_fraction is the perf model's seed share;
  /// measured_fraction is the live-throughput share reconstructed from the
  /// per-tile timings: rate_i = (pairs_i / busy_seconds_i) * threads_i,
  /// normalized over lanes — the number the acceptance gate compares
  /// against the prediction.
  struct LaneStats {
    std::string label;           ///< "simd:6"-style spec entry
    const char* kernel = "?";    ///< resolved panel kernel name
    int threads = 0;             ///< pool contexts the lane owned
    double predicted_fraction = 0.0;
    double measured_fraction = 0.0;
    std::uint64_t tiles = 0;
    std::uint64_t pairs = 0;
    double busy_seconds = 0.0;   ///< summed per-tile wall time on the lane
    double observed_gflops = 0.0;  ///< per-busy-thread modeled rate
  };
  std::vector<LaneStats> lanes;
  /// Lane-ledger conservation outcome: grant batches issued / tiles moved
  /// between lanes by end-game stealing.
  std::size_t lane_leases = 0;
  std::size_t lane_steals = 0;

  /// Average panel occupancy: computed pairs per sweep over the configured
  /// width (1.0 = every sweep ran at full width; ragged tile edges lower it).
  double panel_fill_ratio() const {
    return panels_swept > 0 && panel_width > 0
               ? static_cast<double>(pairs_computed - pairs_resumed) /
                     (static_cast<double>(panels_swept) *
                      static_cast<double>(panel_width))
               : 0.0;
  }

  /// Pair-sample throughput: pairs * m / seconds.
  double cell_rate(std::size_t m) const {
    return seconds > 0.0 ? static_cast<double>(pairs_computed) *
                               static_cast<double>(m) / seconds
                         : 0.0;
  }
};

/// Reads the engine.* counters of a metrics snapshot (typically a
/// run-scoped delta) back into the numeric EngineStats fields. kernel /
/// panel_width / seconds come from gauges where available; the per-thread
/// vectors are reassembled from the engine.thread.<tid>.* counters.
EngineStats engine_stats_from_metrics(const obs::MetricsSnapshot& snapshot);

/// Parallel first-touch fill of the staged matrix: the gene space is
/// partitioned by node exactly as numa_node_of_gene does for tiles, and
/// each node's block is split evenly among that node's threads — so the
/// pages of a node's gene rows fault in on (and are served from) that node.
/// When threads < nodes, whole node blocks are instead handed out
/// round-robin so every gene row is still filled exactly once. Exposed for
/// the staging tests; the engine calls it through staged_ranks.
void fill_staged_first_touch(StagedRankMatrix& staged,
                             const RankedMatrix& ranks, par::ThreadPool& pool,
                             int threads, int nodes);

class MiEngine {
 public:
  /// Both references must outlive the engine. The ranked matrix must have
  /// the same sample count as the statistic.
  MiEngine(const PairStatistic& statistic, const RankedMatrix& ranks);

  /// B-spline convenience: wraps `estimator` in a BsplineStat internally
  /// (kernel selection still flows through config at sweep time). Kept so
  /// the many B-spline call sites read as before the estimator redesign.
  MiEngine(const BsplineMi& estimator, const RankedMatrix& ranks);

  /// All-pairs MI with thresholding: returns the network of pairs with
  /// MI >= threshold (weights are MI in nats). Honors config.team_size:
  /// > 1 runs the teamed scheduler (see compute_network_teamed).
  GeneNetwork compute_network(double threshold, const TingeConfig& config,
                              par::ThreadPool& pool,
                              EngineStats* stats = nullptr) const;

  /// Dense n x n MI matrix (row-major, diagonal = 0). For small n only —
  /// used by tests, the DPI baseline and estimator studies.
  std::vector<float> compute_dense(const TingeConfig& config,
                                   par::ThreadPool& pool,
                                   EngineStats* stats = nullptr) const;

  /// Checkpointed variant of compute_network: journals each completed tile
  /// to `checkpoint_path`; if a checkpoint with the identical run signature
  /// already exists there, completed tiles are loaded instead of recomputed.
  /// The checkpoint file is removed on successful completion unless
  /// `keep_checkpoint` is set — a long-lived server keeps the completed
  /// journal so a restart restores the network from it instead of
  /// recomputing the whole triangle.
  ///
  /// `progress(done, total)` is called from worker threads (serialized) as
  /// tiles complete — throttled to at most once per
  /// config.progress_tile_interval tiles or ~100 ms, whichever comes first;
  /// the final tile always reports and an interval of 1 restores per-tile
  /// callbacks. An exception thrown from it aborts the run exactly like a
  /// crash would — which is how the failure-injection tests exercise resume.
  /// Honors config.team_size, so a checkpointed run can resume under the
  /// teamed scheduler (and vice versa — the journal is scheduler-agnostic).
  GeneNetwork compute_network_checkpointed(
      double threshold, const TingeConfig& config, par::ThreadPool& pool,
      const std::string& checkpoint_path, EngineStats* stats = nullptr,
      const std::function<void(std::size_t, std::size_t)>& progress = {},
      bool keep_checkpoint = false) const;

  /// Team-mode variant: threads are grouped into teams of `team_size` (the
  /// Phi's hardware threads of one core); a team claims a tile together and
  /// its members split the tile's pairs round-robin, so the tile's two gene
  /// blocks are shared in the core's cache instead of each thread streaming
  /// its own tile. team_size must divide config.threads (or the pool width
  /// when config.threads is 0) — a clear ContractViolation otherwise.
  /// Results are identical to compute_network. Equivalent to
  /// compute_network with config.team_size = team_size (kept as the named
  /// entry point the paper's teamed experiments call).
  GeneNetwork compute_network_teamed(double threshold,
                                     const TingeConfig& config,
                                     par::ThreadPool& pool, int team_size,
                                     EngineStats* stats = nullptr) const;

 private:
  /// The uint16 staged copy of the rank matrix (config.stage_ranks and
  /// m <= 65536; null otherwise). Built lazily on the first sweep — filled
  /// in parallel, partitioned so each NUMA node's threads first-touch the
  /// gene rows their node's tiles will sweep — then reused by every later
  /// pass (the staging is config-independent apart from the on/off gate).
  const StagedRankMatrix* staged_ranks(const TingeConfig& config,
                                       par::ThreadPool& pool, int threads,
                                       int numa_nodes) const;

  /// The lane scheduler's perf model (null when config.hetero == "off").
  /// Created on the first heterogeneous pass with the assumed-efficiency
  /// calibration and kept for the engine's lifetime, so every later pass
  /// (checkpoint resume legs, consensus resamples) starts from the tile
  /// timings the earlier ones observed instead of the static constant.
  PerfModel* lane_model(const TingeConfig& config) const;

  /// Set only by the B-spline convenience constructor (declared before
  /// statistic_ so the reference can bind to it during construction).
  std::unique_ptr<PairStatistic> owned_statistic_;
  const PairStatistic& statistic_;
  const RankedMatrix& ranks_;
  mutable std::once_flag staged_once_;
  mutable std::unique_ptr<StagedRankMatrix> staged_;
  mutable std::once_flag lane_model_once_;
  mutable std::unique_ptr<PerfModel> lane_model_;
};

}  // namespace tinge
