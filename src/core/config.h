// Configuration of the TINGe-style network construction pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator_kind.h"
#include "mi/bspline_kernels.h"
#include "parallel/parallel_for.h"
#include "preprocess/filter.h"

namespace tinge {

/// Three-state policy knob: Auto lets the runtime decide (measurement or
/// host detection), On/Off force it.
enum class KnobMode { Auto, On, Off };

const char* knob_mode_name(KnobMode mode);

/// One lane of an explicit --hetero spec: a kernel variant plus the number
/// of pool contexts it owns.
struct LaneSpec {
  MiKernel kernel = MiKernel::Auto;
  int threads = 0;
};

/// Parses an explicit heterogeneous-lane spec: comma-separated
/// "kernel:threads" entries ("simd:6,scalar:2"). The strings "off" and
/// "auto" are not specs and must be handled by the caller. Throws
/// ContractViolation on malformed entries, unknown kernel names or
/// non-positive thread counts.
std::vector<LaneSpec> parse_lane_specs(const std::string& spec);

struct TingeConfig {
  // --- estimator (Daub et al. defaults used by TINGe) ------------------
  /// Which pair statistic the sweep computes (core/pair_statistic.h).
  /// Bspline is the paper's pipeline; the others reuse the same executor
  /// through the generic panel fallback.
  EstimatorKind estimator = EstimatorKind::Bspline;
  int bins = 10;          ///< histogram/B-spline/phi bins b
  int spline_order = 3;   ///< B-spline order k (degree k-1)

  // --- significance ------------------------------------------------------
  double alpha = 1e-3;           ///< permutation-test significance level
  std::size_t permutations = 2000;  ///< null-distribution sample size q

  // --- parallel execution ------------------------------------------------
  std::size_t tile_size = 64;  ///< genes per tile side (cache blocking)
  int threads = 0;             ///< 0 = all hardware threads
  MiKernel kernel = MiKernel::Auto;
  par::Schedule schedule = par::Schedule::Dynamic;

  /// Threads per tile-claiming team (the Phi's hardware threads of one
  /// core): 1 = flat dynamic scheduling (one tile per thread); > 1 groups
  /// that many consecutive pool contexts into teams that claim one tile
  /// together and split its panels round-robin. Must divide the effective
  /// thread count (checked when the sweep starts, since `threads = 0`
  /// resolves against the pool width). Results are bit-identical either
  /// way.
  int team_size = 1;

  /// Panel width B for the row-reuse MI kernel: each tile row is swept as
  /// batches of B column genes sharing the row gene's table lookups.
  /// 0 = auto (largest B <= kMaxPanelWidth whose histograms fit the panel
  /// cache budget, see auto_panel_width).
  int panel_width = 0;

  // --- memory-side knobs (all bit-identical; see bspline_kernels.h) ------
  /// Stage rank rows as uint16 for the O(n^2) sweep when m <= 65536,
  /// halving the streamed rank bytes. Falls back to uint32 transparently
  /// for larger m.
  bool stage_ranks = true;

  /// FMA panel kernels read the packed interleaved [weights | first_bin]
  /// table rows instead of the two classic arrays. Auto = one-shot
  /// microbenchmark per process (see packed_pays_measured); the flag is a
  /// no-op outside the Simd panel kernels.
  KnobMode packed_table = KnobMode::Auto;

  /// Software prefetch of upcoming samples' table rows in the panel
  /// kernels. Auto = one-shot microbenchmark per process (see
  /// prefetch_pays_measured).
  KnobMode prefetch = KnobMode::Auto;

  /// NUMA-aware tile scheduling: partition rank rows across memory nodes by
  /// first touch and have each node's threads prefer tiles whose row genes
  /// live on their node. Auto = on when the host reports > 1 node. Off =
  /// classic shared work queue.
  ///
  /// Scheduler precedence: --team, --hetero and --numa each replace the
  /// flat scheduler and cannot combine. Explicit conflicts are rejected by
  /// validate() (numa=on with team_size > 1; hetero with team_size > 1,
  /// numa=on or cluster_ranks > 0); numa=auto silently resolves off
  /// whenever teams or lanes are active.
  KnobMode numa = KnobMode::Auto;

  /// Heterogeneous executor lanes (DESIGN.md §6i): partition the pool
  /// contexts into lanes of unequal modeled throughput, each sweeping with
  /// its own kernel variant, fed from a shared LPT tile ledger seeded by
  /// the device perf model and recalibrated from live per-tile timings.
  /// "off" = one homogeneous scheduler; "auto" = two lanes (the resolved
  /// --kernel vs the scalar kernel — the paper's Xeon-vs-Phi stand-ins)
  /// with threads split by predicted throughput; otherwise an explicit
  /// "kernel:threads,..." spec whose thread counts must sum to --threads.
  /// Results are bit-identical to the flat scheduler (test-enforced).
  std::string hetero = "off";

  /// Progress-callback throttle for the checkpointed engine: invoke the
  /// callback at most once per this many completed tiles (the ~100 ms time
  /// floor and the final tile always report). 1 = every tile (what the
  /// failure-injection tests rely on); 0 = auto (~tiles/128).
  std::size_t progress_tile_interval = 0;

  // --- reproducibility ----------------------------------------------------
  std::uint64_t seed = 20140519;  ///< drives the permutation null

  // --- fault tolerance ------------------------------------------------------
  /// When non-empty, the MI pass journals completed tiles to this file and
  /// resumes from it if a matching checkpoint exists (crash recovery for
  /// whole-genome runs). Removed automatically on success.
  std::string checkpoint_path;

  // --- cluster execution ---------------------------------------------------
  /// 0 = single-process engine; >= 1 = shard the pipeline across this many
  /// ranks with the TINGe-classic ring sweep (same edges, test-enforced).
  int cluster_ranks = 0;
  /// Transport backend for cluster runs: "inproc" (rank-threads, simulated
  /// network) or "tcp" (real framed sockets / worker processes).
  std::string cluster_transport = "inproc";
  /// Tile assignment for cluster runs: "static" (TINGe-classic balanced
  /// block-pair rule) or "lease" (rank-0 tile leases with work stealing —
  /// idle ranks pull tiles from a global ledger, so a straggler no longer
  /// gates the sweep and checkpoints resume on any world size).
  std::string cluster_balance = "static";

  // --- consensus (bootstrapped ensemble; ARACNE's procedure) ---------------
  /// B > 0 runs the single-process pipeline as an ensemble: B bootstrap
  /// column resamples per selected estimator, each swept through the same
  /// executor at that estimator's own null threshold; edge weights become
  /// per-edge support frequencies in (0, 1]. 0 = plain single network.
  std::size_t consensus_resamples = 0;
  /// Comma-separated estimator names voting in the consensus ("bspline,
  /// pearson"); empty = just `estimator`.
  std::string consensus_estimators;
  /// Minimum support frequency for an edge to survive the consensus.
  double consensus_min_frequency = 0.5;

  // --- post-processing ----------------------------------------------------
  bool apply_dpi = false;      ///< ARACNE-style indirect-edge removal
  double dpi_tolerance = 0.1;  ///< DPI tolerance epsilon

  // --- preprocessing -------------------------------------------------------
  FilterCriteria filter;

  /// Throws ContractViolation on inconsistent settings.
  void validate() const;
};

}  // namespace tinge
