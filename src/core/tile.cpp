#include "core/tile.h"

#include <algorithm>

namespace tinge {

TileSet::TileSet(std::size_t n_genes, std::size_t tile_size)
    : n_genes_(n_genes), tile_size_(tile_size) {
  TINGE_EXPECTS(tile_size >= 1);
  const std::size_t blocks = (n_genes + tile_size - 1) / tile_size;
  tiles_.reserve(blocks * (blocks + 1) / 2);
  for (std::size_t bi = 0; bi < blocks; ++bi) {
    for (std::size_t bj = bi; bj < blocks; ++bj) {
      Tile tile;
      tile.row_begin = bi * tile_size;
      tile.row_end = std::min(tile.row_begin + tile_size, n_genes);
      tile.col_begin = bj * tile_size;
      tile.col_end = std::min(tile.col_begin + tile_size, n_genes);
      if (tile.pair_count() > 0) tiles_.push_back(tile);
    }
  }
}

std::size_t TileSet::total_pairs() const {
  std::size_t total = 0;
  for (const Tile& tile : tiles_) total += tile.pair_count();
  return total;
}

}  // namespace tinge
