#include "core/tile.h"

#include <algorithm>

namespace tinge {

void append_triangle_tiles(std::size_t gene_begin, std::size_t gene_end,
                           std::size_t tile_size, std::vector<Tile>& out) {
  TINGE_EXPECTS(tile_size >= 1);
  TINGE_EXPECTS(gene_begin <= gene_end);
  const std::size_t n = gene_end - gene_begin;
  const std::size_t blocks = (n + tile_size - 1) / tile_size;
  out.reserve(out.size() + blocks * (blocks + 1) / 2);
  for (std::size_t bi = 0; bi < blocks; ++bi) {
    for (std::size_t bj = bi; bj < blocks; ++bj) {
      Tile tile;
      tile.row_begin = gene_begin + bi * tile_size;
      tile.row_end = std::min(tile.row_begin + tile_size, gene_end);
      tile.col_begin = gene_begin + bj * tile_size;
      tile.col_end = std::min(tile.col_begin + tile_size, gene_end);
      if (tile.pair_count() > 0) out.push_back(tile);
    }
  }
}

void append_rectangle_tiles(std::size_t row_begin, std::size_t row_end,
                            std::size_t col_begin, std::size_t col_end,
                            std::size_t tile_size, std::vector<Tile>& out) {
  TINGE_EXPECTS(tile_size >= 1);
  TINGE_EXPECTS(row_begin <= row_end);
  TINGE_EXPECTS(col_begin <= col_end);
  TINGE_EXPECTS(row_end <= col_begin);  // every cell must be an i < j pair
  for (std::size_t i = row_begin; i < row_end; i += tile_size) {
    for (std::size_t j = col_begin; j < col_end; j += tile_size) {
      Tile tile;
      tile.row_begin = i;
      tile.row_end = std::min(i + tile_size, row_end);
      tile.col_begin = j;
      tile.col_end = std::min(j + tile_size, col_end);
      if (tile.pair_count() > 0) out.push_back(tile);
    }
  }
}

TileSet::TileSet(std::size_t n_genes, std::size_t tile_size)
    : n_genes_(n_genes), tile_size_(tile_size) {
  append_triangle_tiles(0, n_genes, tile_size, tiles_);
}

std::size_t TileSet::total_pairs() const {
  std::size_t total = 0;
  for (const Tile& tile : tiles_) total += tile.pair_count();
  return total;
}

}  // namespace tinge
