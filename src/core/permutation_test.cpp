#include "core/permutation_test.h"

#include <vector>

#include "obs/metrics.h"
#include "stats/rng.h"

namespace tinge {

PairTestResult pair_permutation_test(const PairStatistic& statistic,
                                     std::span<const std::uint32_t> ranks_x,
                                     std::span<const std::uint32_t> ranks_y,
                                     std::size_t q, std::uint64_t seed,
                                     PairScratch& scratch) {
  TINGE_EXPECTS(q >= 1);
  TINGE_EXPECTS(ranks_x.size() == statistic.n_samples());
  TINGE_EXPECTS(ranks_y.size() == statistic.n_samples());
  PairTestResult result;
  result.mi = statistic.eval_null_pair(ranks_x.data(), ranks_y.data(), scratch);

  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> permuted(ranks_y.begin(), ranks_y.end());
  std::size_t at_least = 0;
  for (std::size_t draw = 0; draw < q; ++draw) {
    shuffle(permuted, rng);
    const double null_value =
        statistic.eval_null_pair(ranks_x.data(), permuted.data(), scratch);
    if (null_value >= result.mi) ++at_least;
  }
  result.p_value = (static_cast<double>(at_least) + 1.0) /
                   (static_cast<double>(q) + 1.0);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("permtest.pairs_tested").add(1);
  registry.counter("permtest.draws").add(q);
  return result;
}

PairTestResult pair_permutation_test(const BsplineMi& estimator,
                                     std::span<const std::uint32_t> ranks_x,
                                     std::span<const std::uint32_t> ranks_y,
                                     std::size_t q, std::uint64_t seed,
                                     JointHistogram& scratch, MiKernel kernel) {
  TINGE_EXPECTS(q >= 1);
  PairTestResult result;
  result.mi = estimator.mi(ranks_x, ranks_y, scratch, kernel);

  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> permuted(ranks_y.begin(), ranks_y.end());
  std::size_t at_least = 0;
  for (std::size_t draw = 0; draw < q; ++draw) {
    shuffle(permuted, rng);
    const double null_mi = estimator.mi(ranks_x, permuted, scratch, kernel);
    if (null_mi >= result.mi) ++at_least;
  }
  result.p_value = (static_cast<double>(at_least) + 1.0) /
                   (static_cast<double>(q) + 1.0);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("permtest.pairs_tested").add(1);
  registry.counter("permtest.draws").add(q);
  return result;
}

}  // namespace tinge
