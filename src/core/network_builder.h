// End-to-end network construction: the public entry point reproducing the
// paper's full pipeline (preprocess -> shared weight table -> universal
// permutation null -> tiled parallel MI with thresholding -> optional DPI).
#pragma once

#include <functional>
#include <memory>
#include <string_view>

#include "core/config.h"
#include "core/consensus.h"
#include "core/dpi.h"
#include "core/mi_engine.h"
#include "core/null_distribution.h"
#include "data/expression_matrix.h"
#include "graph/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tinge {

/// Wall-clock seconds per pipeline stage (Table T1). Derived from the
/// run's TraceSpan stage tree (BuildResult::trace) — kept as a flat view
/// because every bench harness and test reads these fields.
struct StageTimes {
  double preprocess = 0.0;    ///< impute + filter + rank transform
  double weight_table = 0.0;  ///< B-spline table + marginal entropy
  double null_build = 0.0;    ///< universal permutation null + threshold
  double mi_pass = 0.0;       ///< all-pairs MI + thresholding
  double dpi = 0.0;           ///< indirect-edge filtering (if enabled)
  double total = 0.0;
};

struct BuildResult {
  GeneNetwork network;
  /// The universal permutation null the threshold came from; usable for
  /// per-edge p-values (write_edge_list_with_pvalues).
  std::shared_ptr<const EmpiricalDistribution> null;
  StageTimes times;
  double threshold = 0.0;          ///< I_alpha actually applied (nats)
  double marginal_entropy = 0.0;   ///< shared H(X) (nats)
  EngineStats engine;
  std::size_t genes_in = 0;        ///< before filtering
  std::size_t genes_used = 0;      ///< after filtering
  std::size_t samples = 0;         ///< experiments per gene
  std::size_t imputed_cells = 0;
  DpiStats dpi_stats;
  /// Consensus-mode accounting (zero unless config.consensus_resamples > 0;
  /// then `network` is the bootstrap consensus and edge weights are
  /// frequencies, not statistic values).
  ConsensusStats consensus;

  // --- observability (DESIGN.md §6c) ------------------------------------
  /// Per-run stage tree: run -> preprocess(impute, filter, rank),
  /// weight_table, null, threshold, mi_sweep, dpi. Callers may append more
  /// spans (the CLI adds "output") and re-finish() before serializing.
  std::shared_ptr<obs::Trace> trace;
  /// Registry activity attributable to this run: process-wide counters
  /// diffed across the build (engine.*, null.*, checkpoint.*, ...).
  obs::MetricsSnapshot metrics;
  /// Thread-pool accounting: cumulative busy seconds per worker context
  /// and the pool's lifetime, for the manifest's busy/idle section.
  std::vector<double> pool_busy_seconds;
  double pool_lifetime_seconds = 0.0;
};

class NetworkBuilder {
 public:
  explicit NetworkBuilder(TingeConfig config);

  const TingeConfig& config() const { return config_; }

  /// Optional progress sink (stage announcements); defaults to silent.
  void set_logger(std::function<void(std::string_view)> logger) {
    logger_ = std::move(logger);
  }

  /// Runs the full pipeline. The input is copied (preprocessing mutates);
  /// use the rvalue overload to avoid the copy for large matrices.
  BuildResult build(const ExpressionMatrix& expression) const;
  BuildResult build(ExpressionMatrix&& expression) const;

 private:
  BuildResult run(ExpressionMatrix working) const;

  TingeConfig config_;
  std::function<void(std::string_view)> logger_;
};

}  // namespace tinge
