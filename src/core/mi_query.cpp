#include "core/mi_query.h"

#include <algorithm>
#include <functional>

#include "core/sweep.h"
#include "obs/metrics.h"
#include "preprocess/rank_transform.h"
#include "util/contracts.h"
#include "util/str.h"

namespace tinge {

namespace {

std::size_t hash_mix(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

/// Dense per-block writer for the query sweep. Each pair lands in exactly
/// one block, each block's tile is claimed by exactly one sweep context,
/// so writes never race; the block index itself is read-only during the
/// sweep.
class BlockSink {
 public:
  BlockSink(std::size_t tile_size,
            const std::unordered_map<std::uint64_t, TileValues*>* blocks)
      : tile_size_(tile_size), blocks_(blocks) {}

  void tile_begin(int /*tid*/, std::size_t /*t*/) {}
  void pair(int /*tid*/, std::size_t i, std::size_t j, double mi) {
    const std::uint64_t id =
        (static_cast<std::uint64_t>(i / tile_size_) << 32) |
        static_cast<std::uint64_t>(j / tile_size_);
    blocks_->at(id)->set(i, j, mi);
  }
  void tile_end(int /*tid*/, std::size_t /*t*/, int /*team_width*/) {}

 private:
  std::size_t tile_size_;
  const std::unordered_map<std::uint64_t, TileValues*>* blocks_;
};

}  // namespace

std::size_t TileCacheKeyHash::operator()(const TileCacheKey& key) const {
  std::size_t seed = std::hash<std::string>{}(key.dataset);
  seed = hash_mix(seed, static_cast<std::size_t>(key.estimator));
  seed = hash_mix(seed, std::hash<std::string>{}(key.kernel));
  seed = hash_mix(seed, key.block_row);
  seed = hash_mix(seed, key.block_col);
  return seed;
}

TileCache::TileCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

std::shared_ptr<const TileValues> TileCache::get(const TileCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->values;
}

void TileCache::put(const TileCacheKey& key,
                    std::shared_ptr<const TileValues> values) {
  if (max_bytes_ == 0 || values == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto existing = index_.find(key);
  if (existing != index_.end()) {
    // Same key computed twice (two requests raced past a miss): keep the
    // incumbent — both computations are bit-identical by construction.
    return;
  }
  bytes_ += values->bytes();
  lru_.push_front(Entry{key, std::move(values)});
  index_.emplace(key, lru_.begin());
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.values->bytes();
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t TileCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t TileCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

MiQueryEngine::MiQueryEngine(const PairStatistic& statistic,
                             const RankedMatrix& ranked,
                             const TingeConfig& config, par::ThreadPool* pool,
                             TileCache& cache, std::string dataset_id)
    : statistic_(&statistic),
      ranked_(&ranked),
      config_(config),
      panels_(statistic.plan(config)),
      pool_(pool),
      cache_(&cache),
      dataset_(std::move(dataset_id)),
      tile_size_(config.tile_size),
      n_genes_(ranked.n_genes()) {
  TINGE_EXPECTS(tile_size_ >= 1);
}

std::vector<double> MiQueryEngine::pair_values(
    std::span<const GenePair> pairs) {
  auto& registry = obs::MetricsRegistry::global();
  const std::size_t T = tile_size_;

  // Resolve every requested pair's block, pulling whatever the cache
  // already holds and collecting the blocks that must be swept.
  std::unordered_map<std::uint64_t, std::shared_ptr<const TileValues>> ready;
  std::unordered_map<std::uint64_t, TileValues*> missing;  // filled below
  std::vector<std::uint64_t> missing_order;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> normalized;
  normalized.reserve(pairs.size());
  for (const GenePair& pair : pairs) {
    std::uint32_t a = pair.a, b = pair.b;
    if (a > b) std::swap(a, b);
    if (a == b || b >= n_genes_) {
      throw ContractViolation(strprintf(
          "mi query: pair (%u, %u) is not a valid gene pair of a %zu-gene "
          "dataset",
          pair.a, pair.b, n_genes_));
    }
    normalized.emplace_back(a, b);
    const std::uint64_t id = (static_cast<std::uint64_t>(a / T) << 32) |
                             static_cast<std::uint64_t>(b / T);
    if (ready.count(id) != 0 || missing.count(id) != 0) continue;
    TileCacheKey key{dataset_, statistic_->kind(), panels_.name, a / T, b / T};
    if (std::shared_ptr<const TileValues> cached = cache_->get(key)) {
      ready.emplace(id, std::move(cached));
      registry.counter("serve.cache.hits").add(1);
    } else {
      missing.emplace(id, nullptr);
      missing_order.push_back(id);
      registry.counter("serve.cache.misses").add(1);
    }
  }

  if (!missing_order.empty()) {
    // Carve each missing block with the exact boundaries the batch
    // triangular(0, n, T) plan used — multiples of T, clamped to n — so
    // the panel grouping inside the tile, and therefore every resulting
    // bit, matches the batch sweep.
    std::vector<Tile> tiles;
    std::vector<std::shared_ptr<TileValues>> fresh;
    tiles.reserve(missing_order.size());
    fresh.reserve(missing_order.size());
    for (const std::uint64_t id : missing_order) {
      const std::size_t block_row = static_cast<std::size_t>(id >> 32);
      const std::size_t block_col =
          static_cast<std::size_t>(id & 0xFFFFFFFFull);
      Tile tile;
      tile.row_begin = block_row * T;
      tile.row_end = std::min(n_genes_, (block_row + 1) * T);
      tile.col_begin = block_col * T;
      tile.col_end = std::min(n_genes_, (block_col + 1) * T);
      tiles.push_back(tile);
      fresh.push_back(std::make_shared<TileValues>(tile));
      missing[id] = fresh.back().get();
    }

    const SweepPlan plan = SweepPlan::from_tiles(std::move(tiles));
    SweepOptions options;
    options.threads =
        (pool_ != nullptr && plan.count() > 1)
            ? static_cast<int>(std::min<std::size_t>(
                  static_cast<std::size_t>(pool_->max_threads()),
                  plan.count()))
            : 1;
    BlockSink sink(T, &missing);
    const auto row = [this](std::size_t g) {
      return ranked_->ranks(g).data();
    };
    run_sweep(plan, *statistic_, row, panels_, pool_, options, sink);

    tiles_swept_.fetch_add(missing_order.size(), std::memory_order_relaxed);
    registry.counter("serve.planner.tiles_swept").add(missing_order.size());
    registry.counter("serve.planner.pairs_swept").add(plan.total_pairs());
    for (std::size_t b = 0; b < missing_order.size(); ++b) {
      const std::uint64_t id = missing_order[b];
      TileCacheKey key{dataset_, statistic_->kind(), panels_.name,
                       static_cast<std::size_t>(id >> 32),
                       static_cast<std::size_t>(id & 0xFFFFFFFFull)};
      cache_->put(key, fresh[b]);
      ready.emplace(id, std::move(fresh[b]));
    }
  }

  std::vector<double> out;
  out.reserve(normalized.size());
  for (const auto& [a, b] : normalized) {
    const std::uint64_t id = (static_cast<std::uint64_t>(a / T) << 32) |
                             static_cast<std::uint64_t>(b / T);
    out.push_back(ready.at(id)->at(a, b));
  }
  return out;
}

}  // namespace tinge
