// Bootstrapped consensus networks over the pair-statistic lattice
// (DESIGN.md §6h).
//
// One estimator on one dataset yields one network — and every estimator
// has blind spots (B-spline MI needs enough samples per bin, Pearson only
// sees linear structure, KSG is noisy at small m). Consensus mode runs
// B bootstrap resamples of the sample axis through the SAME sweep executor
// for each selected estimator and scores every edge by the fraction of
// (resample, estimator) runs that kept it:
//
//   frequency(u, v) = #{runs where MI/score >= that run's threshold}
//                     / (B * n_estimators)
//
// The consensus network keeps edges with frequency >= min_frequency and
// carries the frequency as the edge weight — a per-edge confidence in
// [min_frequency, 1]. DPI then prunes on these consensus weights (an edge
// that survives few resamples loses its triangles first), which is the
// consensus analogue of ARACNE's bootstrap pipeline.
//
// Determinism: resample b draws its sample indices from
// Xoshiro256(seed + golden * (b + 1)) — the same index vector for every
// estimator at round b, so estimators vote on identical resampled data —
// and each run's threshold comes from the full-data universal null of its
// estimator (the null depends only on m, which resampling preserves).
// Fixed seed => identical edge frequencies, test-enforced.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "core/estimator_kind.h"
#include "data/expression_matrix.h"
#include "graph/network.h"
#include "parallel/thread_pool.h"
#include "preprocess/rank_transform.h"

namespace tinge {

struct ConsensusStats {
  std::size_t resamples = 0;   ///< B
  std::size_t estimators = 0;  ///< voters per resample
  /// Per-estimator full-data significance thresholds, in list order.
  std::vector<double> thresholds;
  /// Distinct edges that appeared in at least one run.
  std::size_t candidate_edges = 0;
  /// Edges kept at frequency >= config.consensus_min_frequency.
  std::size_t kept_edges = 0;
  /// Pairs evaluated across all B * estimators sweeps (null draws excluded).
  std::size_t pairs_computed = 0;
  double seconds = 0.0;
};

/// The estimators that vote in each resample: config.consensus_estimators
/// parsed as a comma-separated list (duplicates rejected), or just
/// config.estimator when the list is empty. Throws std::invalid_argument
/// on an unknown name, exactly like parse_estimator.
std::vector<EstimatorKind> consensus_estimator_list(const TingeConfig& config);

/// Builds the consensus network for `working` (the preprocessed expression
/// matrix `ranked` was computed from). Runs
/// config.consensus_resamples x consensus_estimator_list(config) engine
/// sweeps on bootstrap-resampled columns and returns the finalized network
/// of edges with frequency >= config.consensus_min_frequency, frequency as
/// weight. `log`, when set, receives one line per estimator and a summary.
GeneNetwork build_consensus_network(
    const ExpressionMatrix& working, const RankedMatrix& ranked,
    const TingeConfig& config, par::ThreadPool& pool,
    const std::function<void(std::string_view)>& log = {},
    ConsensusStats* stats = nullptr);

}  // namespace tinge
