#include "core/null_distribution.h"

#include <algorithm>

#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "stats/rng.h"

namespace tinge {

EmpiricalDistribution build_null_distribution(const PairStatistic& statistic,
                                              std::size_t q, std::uint64_t seed,
                                              par::ThreadPool& pool,
                                              int threads) {
  TINGE_EXPECTS(q >= 1);
  const std::size_t m = statistic.n_samples();
  std::vector<double> null_sample(q, 0.0);

  // Deterministic independent of the thread count: draw i always uses the
  // stream obtained by i long-jumps from the seed... that would cost O(q)
  // jumps. Instead, fixed chunks of draws own fixed streams: draw i uses
  // stream i / kDrawsPerStream, which is also how work is distributed.
  constexpr std::size_t kDrawsPerStream = 64;
  const std::size_t n_streams = (q + kDrawsPerStream - 1) / kDrawsPerStream;

  threads = threads > 0 ? std::min(threads, pool.max_threads())
                        : pool.max_threads();

  par::parallel_for(
      pool, threads, 0, n_streams, 1, par::Schedule::Dynamic,
      [&](std::size_t stream_begin, std::size_t stream_end, int /*tid*/) {
        const std::unique_ptr<PairScratch> scratch = statistic.make_scratch();
        std::vector<std::uint32_t> perm_x(m), perm_y(m);
        for (std::size_t stream = stream_begin; stream < stream_end; ++stream) {
          Xoshiro256 rng(seed + 0x9e3779b97f4a7c15ULL * (stream + 1));
          const std::size_t draw_begin = stream * kDrawsPerStream;
          const std::size_t draw_end = std::min(draw_begin + kDrawsPerStream, q);
          for (std::size_t draw = draw_begin; draw < draw_end; ++draw) {
            for (std::size_t s = 0; s < m; ++s) {
              perm_x[s] = static_cast<std::uint32_t>(s);
              perm_y[s] = static_cast<std::uint32_t>(s);
            }
            shuffle(perm_x, rng);
            shuffle(perm_y, rng);
            null_sample[draw] = statistic.eval_null_pair(perm_x.data(),
                                                         perm_y.data(),
                                                         *scratch);
          }
        }
      });

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("null.builds").add(1);
  registry.counter("null.draws").add(q);
  return EmpiricalDistribution(std::move(null_sample));
}

EmpiricalDistribution build_null_distribution(const BsplineMi& estimator,
                                              std::size_t q, std::uint64_t seed,
                                              par::ThreadPool& pool,
                                              int threads, MiKernel kernel) {
  const BsplineStat statistic(estimator, kernel);
  return build_null_distribution(statistic, q, seed, pool, threads);
}

double threshold_for_alpha(const EmpiricalDistribution& null, double alpha) {
  TINGE_EXPECTS(alpha > 0.0 && alpha < 1.0);
  const double q_size = static_cast<double>(null.size());
  if (alpha < 1.0 / (q_size + 1.0)) return null.max();
  return null.quantile(1.0 - alpha);
}

}  // namespace tinge
