#include "core/config.h"

#include <cstdlib>

#include "util/contracts.h"
#include "util/str.h"

namespace tinge {

const char* knob_mode_name(KnobMode mode) {
  switch (mode) {
    case KnobMode::Auto: return "auto";
    case KnobMode::On: return "on";
    case KnobMode::Off: return "off";
  }
  return "?";
}

std::vector<LaneSpec> parse_lane_specs(const std::string& spec) {
  std::vector<LaneSpec> lanes;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    const std::size_t colon = entry.find(':');
    if (entry.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      throw ContractViolation(strprintf(
          "--hetero=%s: expected off, auto or a comma-separated "
          "kernel:threads list (e.g. simd:6,scalar:2)",
          spec.c_str()));
    }
    LaneSpec lane;
    const std::string kernel = entry.substr(0, colon);
    bool matched = false;
    for (const MiKernel candidate :
         {MiKernel::Auto, MiKernel::Scalar, MiKernel::Unrolled, MiKernel::Simd,
          MiKernel::Replicated, MiKernel::Gather512}) {
      if (kernel == kernel_name(candidate)) {
        lane.kernel = candidate;
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw ContractViolation(strprintf(
          "--hetero=%s: unknown kernel '%s' (expected "
          "auto|scalar|unrolled|simd|replicated|gather512)",
          spec.c_str(), kernel.c_str()));
    }
    char* parsed_end = nullptr;
    const std::string count = entry.substr(colon + 1);
    const long threads = std::strtol(count.c_str(), &parsed_end, 10);
    if (parsed_end == nullptr || *parsed_end != '\0' || threads < 1) {
      throw ContractViolation(
          strprintf("--hetero=%s: lane '%s' needs a positive thread count",
                    spec.c_str(), entry.c_str()));
    }
    lane.threads = static_cast<int>(threads);
    lanes.push_back(lane);
  }
  return lanes;
}

void TingeConfig::validate() const {
  TINGE_EXPECTS(spline_order >= 1);
  TINGE_EXPECTS(spline_order <= BsplineBasis::kMaxOrder);
  TINGE_EXPECTS(bins >= spline_order);
  TINGE_EXPECTS(alpha > 0.0 && alpha < 1.0);
  TINGE_EXPECTS(permutations >= 10);
  TINGE_EXPECTS(tile_size >= 1);
  TINGE_EXPECTS(threads >= 0);
  TINGE_EXPECTS(team_size >= 1);
  TINGE_EXPECTS(panel_width >= 0 && panel_width <= kMaxPanelWidth);
  TINGE_EXPECTS(dpi_tolerance >= 0.0 && dpi_tolerance < 1.0);
  TINGE_EXPECTS(cluster_ranks >= 0);
  TINGE_EXPECTS(cluster_transport == "inproc" || cluster_transport == "tcp");
  TINGE_EXPECTS(cluster_balance == "static" || cluster_balance == "lease");
  TINGE_EXPECTS(consensus_min_frequency > 0.0 &&
                consensus_min_frequency <= 1.0);
  // Consensus is an ensemble over single-process engine runs; sharding one
  // resample across ranks is not supported.
  TINGE_EXPECTS(consensus_resamples == 0 || cluster_ranks == 0);

  // Scheduler precedence (see the numa field comment): team, hetero and
  // numa each replace the flat scheduler, so explicitly forcing two of
  // them together is an error, not a silent pick. numa=auto stays legal
  // everywhere — it resolves off when another scheduler is active.
  if (numa == KnobMode::On && team_size > 1) {
    throw ContractViolation(strprintf(
        "--numa=on requires the flat scheduler but --team=%d is set; "
        "teamed claiming ignores the NUMA tile plan (drop one of the two, "
        "or use --numa=auto to let teams win)",
        team_size));
  }
  if (hetero != "off") {
    if (team_size > 1) {
      throw ContractViolation(strprintf(
          "--hetero=%s requires the flat scheduler but --team=%d is set; "
          "lanes and teams cannot share the pool",
          hetero.c_str(), team_size));
    }
    if (numa == KnobMode::On) {
      throw ContractViolation(strprintf(
          "--hetero=%s cannot combine with --numa=on: both replace the "
          "flat tile queue (use --numa=auto to let lanes win)",
          hetero.c_str()));
    }
    if (cluster_ranks > 0) {
      throw ContractViolation(strprintf(
          "--hetero=%s is a single-process scheduler; it cannot combine "
          "with --cluster=%d",
          hetero.c_str(), cluster_ranks));
    }
    if (hetero != "auto") {
      const std::vector<LaneSpec> lanes = parse_lane_specs(hetero);
      if (threads <= 0) {
        throw ContractViolation(strprintf(
            "--hetero=%s: an explicit lane spec needs an explicit "
            "--threads so the lane thread counts have a total to match",
            hetero.c_str()));
      }
      int lane_threads = 0;
      for (const LaneSpec& lane : lanes) lane_threads += lane.threads;
      if (lane_threads != threads) {
        throw ContractViolation(strprintf(
            "--hetero=%s: lane thread counts sum to %d but --threads=%d",
            hetero.c_str(), lane_threads, threads));
      }
    }
  }
}

}  // namespace tinge
