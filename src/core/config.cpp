#include "core/config.h"

#include "util/contracts.h"

namespace tinge {

const char* knob_mode_name(KnobMode mode) {
  switch (mode) {
    case KnobMode::Auto: return "auto";
    case KnobMode::On: return "on";
    case KnobMode::Off: return "off";
  }
  return "?";
}

void TingeConfig::validate() const {
  TINGE_EXPECTS(spline_order >= 1);
  TINGE_EXPECTS(spline_order <= BsplineBasis::kMaxOrder);
  TINGE_EXPECTS(bins >= spline_order);
  TINGE_EXPECTS(alpha > 0.0 && alpha < 1.0);
  TINGE_EXPECTS(permutations >= 10);
  TINGE_EXPECTS(tile_size >= 1);
  TINGE_EXPECTS(threads >= 0);
  TINGE_EXPECTS(team_size >= 1);
  TINGE_EXPECTS(panel_width >= 0 && panel_width <= kMaxPanelWidth);
  TINGE_EXPECTS(dpi_tolerance >= 0.0 && dpi_tolerance < 1.0);
  TINGE_EXPECTS(cluster_ranks >= 0);
  TINGE_EXPECTS(cluster_transport == "inproc" || cluster_transport == "tcp");
  TINGE_EXPECTS(cluster_balance == "static" || cluster_balance == "lease");
  TINGE_EXPECTS(consensus_min_frequency > 0.0 &&
                consensus_min_frequency <= 1.0);
  // Consensus is an ensemble over single-process engine runs; sharding one
  // resample across ranks is not supported.
  TINGE_EXPECTS(consensus_resamples == 0 || cluster_ranks == 0);
}

}  // namespace tinge
