// Value-space preprocessing applied before ranking: microarray compendia
// arrive as raw intensities (log-transform) or as pre-normalized values
// (standardize for the correlation baselines; MI itself is rank-invariant).
#pragma once

#include "data/expression_matrix.h"

namespace tinge {

/// In-place log2(1 + max(x, 0)); NaNs pass through untouched.
void log2_transform(ExpressionMatrix& matrix);

/// In-place per-gene z-score: (x - mean)/sd over finite entries. Genes with
/// zero variance become all-zero. NaNs pass through untouched.
void standardize(ExpressionMatrix& matrix);

}  // namespace tinge
