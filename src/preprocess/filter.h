// Gene filtering and missing-value handling.
//
// Whole-genome compendia contain probes that never vary (dead spots,
// unexpressed genes) and arrays with missing measurements. TINGe's
// preprocessing imputes missing spots and drops uninformative genes before
// the O(n^2) MI stage — every gene removed here saves n pair computations.
#pragma once

#include <cstddef>
#include <vector>

#include "data/expression_matrix.h"

namespace tinge {

/// Replaces each NaN with the gene's median over finite entries (0 if a
/// gene is entirely missing). Returns the number of imputed cells.
std::size_t impute_missing_with_median(ExpressionMatrix& matrix);

struct FilterCriteria {
  double min_variance = 1e-12;       ///< drop genes with variance below this
  double max_missing_fraction = 0.3; ///< drop genes with more NaNs than this
};

struct FilterResult {
  ExpressionMatrix matrix;             ///< surviving genes, original order
  std::vector<std::size_t> kept;       ///< original index of each kept gene
  std::size_t dropped_low_variance = 0;
  std::size_t dropped_missing = 0;
};

/// Applies the criteria (missing fraction is evaluated before imputation,
/// so call this first). The input matrix is not modified.
FilterResult filter_genes(const ExpressionMatrix& matrix,
                          const FilterCriteria& criteria);

}  // namespace tinge
