#include "preprocess/filter.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace tinge {

std::size_t impute_missing_with_median(ExpressionMatrix& matrix) {
  std::size_t imputed = 0;
  std::vector<float> finite;
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    auto row = matrix.row(g);
    finite.clear();
    for (const float v : row)
      if (!std::isnan(v)) finite.push_back(v);
    if (finite.size() == row.size()) continue;

    float median = 0.0f;
    if (!finite.empty()) {
      const std::size_t mid = finite.size() / 2;
      std::nth_element(finite.begin(), finite.begin() + mid, finite.end());
      median = finite[mid];
      if (finite.size() % 2 == 0) {
        const float below =
            *std::max_element(finite.begin(), finite.begin() + mid);
        median = (median + below) / 2.0f;
      }
    }
    for (float& v : row) {
      if (std::isnan(v)) {
        v = median;
        ++imputed;
      }
    }
  }
  return imputed;
}

FilterResult filter_genes(const ExpressionMatrix& matrix,
                          const FilterCriteria& criteria) {
  FilterResult result;
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    const Summary s = summarize(matrix.row(g));
    const double missing_fraction =
        matrix.n_samples() == 0
            ? 0.0
            : static_cast<double>(s.missing) /
                  static_cast<double>(matrix.n_samples());
    if (missing_fraction > criteria.max_missing_fraction) {
      ++result.dropped_missing;
      continue;
    }
    if (!(s.variance >= criteria.min_variance)) {
      ++result.dropped_low_variance;
      continue;
    }
    result.kept.push_back(g);
  }
  result.matrix = matrix.select_genes(result.kept);
  return result;
}

}  // namespace tinge
