#include "preprocess/transforms.h"

#include <cmath>

#include "stats/descriptive.h"

namespace tinge {

void log2_transform(ExpressionMatrix& matrix) {
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    for (float& v : matrix.row(g)) {
      if (std::isnan(v)) continue;
      v = std::log2(1.0f + std::max(v, 0.0f));
    }
  }
}

void standardize(ExpressionMatrix& matrix) {
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    auto row = matrix.row(g);
    const Summary s = summarize(row);
    const double sd = std::sqrt(s.variance);
    for (float& v : row) {
      if (std::isnan(v)) continue;
      v = sd > 0.0 ? static_cast<float>((v - s.mean) / sd) : 0.0f;
    }
  }
}

}  // namespace tinge
