// Rank transformation of expression profiles.
//
// TINGe rank-transforms every gene before estimating mutual information.
// This serves two purposes:
//   1. Statistical: MI is invariant under monotone transforms, and ranks
//      make the estimate robust to microarray normalization artifacts.
//   2. Computational (the one the paper exploits): after ranking, every
//      gene's profile is a permutation of the SAME multiset
//      {1, 2, ..., m}. All marginal entropies collapse to one constant and
//      all B-spline weight vectors come from one shared m-row table; a gene
//      is then just an array of m rank ids indexing that table.
//
// Tie handling decides whether the shared table applies:
//   * StableOrder — ties broken by sample index (deterministic). Ranks are
//     a true permutation of 0..m-1: the fast shared-table path. TINGe's
//     choice.
//   * Average — tied samples receive the mean of their rank range
//     (fractional). Statistically cleaner for heavily quantized data, but
//     each gene then needs its own B-spline weights (generic path).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/expression_matrix.h"

namespace tinge {

enum class TiePolicy { StableOrder, Average };

/// 0-based ranks with ties broken by sample order (a permutation of
/// 0..m-1). Input must be NaN-free (impute first).
std::vector<std::uint32_t> rank_order(std::span<const float> values);

/// 0-based fractional ranks with ties averaged. Input must be NaN-free.
std::vector<float> rank_average(std::span<const float> values);

/// Maps a (possibly fractional) 0-based rank among m to the open unit
/// interval: z = (rank + 0.5) / m. This keeps B-spline evaluation away
/// from the clamped knot boundaries.
inline float rank_to_unit(float rank, std::size_t m) {
  return (rank + 0.5f) / static_cast<float>(m);
}

/// All genes of a matrix ranked with StableOrder ties: the input to the
/// shared-weight-table MI engine. Row g holds the rank ids of gene g's
/// samples, in sample order, padded to the matrix stride.
class RankedMatrix {
 public:
  RankedMatrix() = default;
  explicit RankedMatrix(const ExpressionMatrix& matrix);

  std::size_t n_genes() const { return n_genes_; }
  std::size_t n_samples() const { return n_samples_; }

  std::span<const std::uint32_t> ranks(std::size_t g) const {
    TINGE_EXPECTS(g < n_genes_);
    return {ranks_.data() + g * stride_, n_samples_};
  }

  const std::vector<std::string>& gene_names() const { return gene_names_; }

 private:
  std::size_t n_genes_ = 0;
  std::size_t n_samples_ = 0;
  std::size_t stride_ = 0;
  AlignedBuffer<std::uint32_t> ranks_;
  std::vector<std::string> gene_names_;
};

/// uint16 copy of a RankedMatrix: the memory-bandwidth staging layer of the
/// O(n^2) sweep. Ranks are exact integers < m, so when m fits uint16 the
/// rank rows can be narrowed losslessly, halving the bytes the panel
/// kernels stream per pair (the per-sample table *lookups* are unchanged —
/// a uint16 index selects the same weight row — so MI results are
/// bit-identical to the uint32 path).
///
/// Rows are allocated untouched and filled via fill_rows so the engine can
/// partition the fill across threads: under Linux's first-touch policy the
/// filling thread's NUMA node gets the pages, co-locating each gene block
/// with the node that sweeps it (see NumaTilePlan in core/sweep.h).
class StagedRankMatrix {
 public:
  /// Largest sample count a uint16 rank can index (ranks are 0..m-1).
  static constexpr std::size_t kMaxStagedSamples = 65536;

  static bool can_stage(std::size_t n_samples) {
    return n_samples <= kMaxStagedSamples;
  }

  StagedRankMatrix() = default;

  /// Allocates rows without touching them. Every gene row must be filled
  /// via fill_rows before it is read.
  StagedRankMatrix(std::size_t n_genes, std::size_t n_samples);

  /// Allocate-and-fill convenience (single-threaded first touch).
  explicit StagedRankMatrix(const RankedMatrix& source);

  /// Narrows genes [first, last) of `source` into this matrix. Thread-safe
  /// for disjoint gene ranges; the calling thread first-touches the pages.
  void fill_rows(const RankedMatrix& source, std::size_t first,
                 std::size_t last);

  std::size_t n_genes() const { return n_genes_; }
  std::size_t n_samples() const { return n_samples_; }

  const std::uint16_t* row(std::size_t g) const {
    TINGE_EXPECTS(g < n_genes_);
    return ranks_.data() + g * stride_;
  }

  std::span<const std::uint16_t> ranks(std::size_t g) const {
    return {row(g), n_samples_};
  }

 private:
  std::size_t n_genes_ = 0;
  std::size_t n_samples_ = 0;
  std::size_t stride_ = 0;
  AlignedBuffer<std::uint16_t> ranks_;
};

/// In-place rank transform of a whole matrix: each gene row is replaced by
/// rank_to_unit(rank) values under the given tie policy. Used by the
/// generic (non-shared-table) estimator path and by baselines (Spearman).
void rank_transform_in_place(ExpressionMatrix& matrix, TiePolicy policy);

}  // namespace tinge
