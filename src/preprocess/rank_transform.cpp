#include "preprocess/rank_transform.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tinge {

namespace {
// Indices 0..m-1 sorted by value with sample order as tiebreak.
std::vector<std::uint32_t> sorted_order(std::span<const float> values) {
  std::vector<std::uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return values[a] < values[b];
                   });
  return order;
}
}  // namespace

std::vector<std::uint32_t> rank_order(std::span<const float> values) {
  for (const float v : values) TINGE_EXPECTS(!std::isnan(v));
  const auto order = sorted_order(values);
  std::vector<std::uint32_t> rank(values.size());
  for (std::uint32_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
  return rank;
}

std::vector<float> rank_average(std::span<const float> values) {
  for (const float v : values) TINGE_EXPECTS(!std::isnan(v));
  const auto order = sorted_order(values);
  std::vector<float> rank(values.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && values[order[j + 1]] == values[order[i]]) ++j;
    const float avg = static_cast<float>(i + j) / 2.0f;
    for (std::size_t t = i; t <= j; ++t) rank[order[t]] = avg;
    i = j + 1;
  }
  return rank;
}

RankedMatrix::RankedMatrix(const ExpressionMatrix& matrix)
    : n_genes_(matrix.n_genes()),
      n_samples_(matrix.n_samples()),
      stride_(round_up(n_samples_ == 0 ? 1 : n_samples_,
                       kSimdAlignment / sizeof(std::uint32_t))),
      ranks_(n_genes_ * stride_),
      gene_names_(matrix.gene_names()) {
  for (std::size_t g = 0; g < n_genes_; ++g) {
    const auto ranks = rank_order(matrix.row(g));
    std::uint32_t* dst = ranks_.data() + g * stride_;
    std::copy(ranks.begin(), ranks.end(), dst);
  }
}

StagedRankMatrix::StagedRankMatrix(std::size_t n_genes, std::size_t n_samples)
    : n_genes_(n_genes),
      n_samples_(n_samples),
      stride_(round_up(n_samples == 0 ? 1 : n_samples,
                       kSimdAlignment / sizeof(std::uint16_t))),
      ranks_(n_genes * stride_, kUninitialized) {
  TINGE_EXPECTS(can_stage(n_samples));
}

StagedRankMatrix::StagedRankMatrix(const RankedMatrix& source)
    : StagedRankMatrix(source.n_genes(), source.n_samples()) {
  fill_rows(source, 0, n_genes_);
}

void StagedRankMatrix::fill_rows(const RankedMatrix& source, std::size_t first,
                                 std::size_t last) {
  TINGE_EXPECTS(last <= n_genes_ && first <= last);
  TINGE_EXPECTS(source.n_genes() == n_genes_);
  TINGE_EXPECTS(source.n_samples() == n_samples_);
  for (std::size_t g = first; g < last; ++g) {
    const std::uint32_t* src = source.ranks(g).data();
    std::uint16_t* dst = ranks_.data() + g * stride_;
    for (std::size_t s = 0; s < n_samples_; ++s)
      dst[s] = static_cast<std::uint16_t>(src[s]);
    // Zero the padding tail: kernels only read n_samples_ entries, but
    // uninitialized pad bytes would make rerun checksums nondeterministic.
    for (std::size_t s = n_samples_; s < stride_; ++s) dst[s] = 0;
  }
}

void rank_transform_in_place(ExpressionMatrix& matrix, TiePolicy policy) {
  const std::size_t m = matrix.n_samples();
  for (std::size_t g = 0; g < matrix.n_genes(); ++g) {
    auto row = matrix.row(g);
    if (policy == TiePolicy::StableOrder) {
      const auto ranks = rank_order(row);
      for (std::size_t s = 0; s < m; ++s)
        row[s] = rank_to_unit(static_cast<float>(ranks[s]), m);
    } else {
      const auto ranks = rank_average(row);
      for (std::size_t s = 0; s < m; ++s) row[s] = rank_to_unit(ranks[s], m);
    }
  }
}

}  // namespace tinge
