// Network serialization: weighted edge lists (TSV) for analysis pipelines
// and SIF for Cytoscape — the two formats TINGe-era tooling consumed.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "graph/network.h"

namespace tinge {

/// "gene_a <tab> gene_b <tab> weight" rows, preceded by a "# nodes: N" header
/// that makes the file self-contained (isolated nodes survive a roundtrip).
void write_edge_list(const GeneNetwork& network, std::ostream& out);
void write_edge_list_file(const GeneNetwork& network, const std::string& path);

/// Reads the format written by write_edge_list. Returns a finalized network.
GeneNetwork read_edge_list(std::istream& in);
GeneNetwork read_edge_list_file(const std::string& path);

/// Cytoscape SIF: "gene_a mi gene_b" (weights are not representable in SIF).
void write_sif(const GeneNetwork& network, std::ostream& out);
void write_sif_file(const GeneNetwork& network, const std::string& path);

/// Edge list with a fourth column: the permutation-null p-value of each
/// edge's MI, evaluated against `null_p_value` (typically
/// EmpiricalDistribution::p_value bound to the pipeline's universal null).
/// Note the p-values are conservative for significant edges: the null was
/// sampled q times, so values saturate at 1/(q+1).
void write_edge_list_with_pvalues(
    const GeneNetwork& network,
    const std::function<double(float)>& null_p_value, std::ostream& out);
void write_edge_list_with_pvalues_file(
    const GeneNetwork& network,
    const std::function<double(float)>& null_p_value, const std::string& path);

}  // namespace tinge
