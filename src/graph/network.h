// The inferred gene network: an undirected, weighted graph over gene ids.
//
// Whole-genome scale means up to ~15k nodes and (after thresholding)
// typically 10^5..10^7 edges, so edges live in a flat sorted vector and
// adjacency is built on demand as CSR.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/contracts.h"

namespace tinge {

struct Edge {
  std::uint32_t u = 0;  ///< smaller endpoint
  std::uint32_t v = 0;  ///< larger endpoint
  float weight = 0.0f;  ///< MI (nats) or |correlation|

  friend bool operator==(const Edge&, const Edge&) = default;
};

class GeneNetwork {
 public:
  GeneNetwork() = default;
  explicit GeneNetwork(std::vector<std::string> node_names);

  std::size_t n_nodes() const { return node_names_.size(); }
  std::size_t n_edges() const { return edges_.size(); }
  const std::vector<std::string>& node_names() const { return node_names_; }

  /// Adds an undirected edge (endpoint order normalized). Self loops are
  /// rejected by contract.
  void add_edge(std::uint32_t a, std::uint32_t b, float weight);

  /// Bulk append of already-normalized edges (engine output buffers).
  void add_edges(std::span<const Edge> edges);

  /// Sorts by (u, v) and merges duplicates keeping the max weight.
  /// Must be called before queries that assume sorted order.
  void finalize();
  bool finalized() const { return finalized_; }

  std::span<const Edge> edges() const { return edges_; }

  /// Weight of (a, b), or a negative value if absent. Requires finalize().
  float edge_weight(std::uint32_t a, std::uint32_t b) const;
  bool has_edge(std::uint32_t a, std::uint32_t b) const {
    return edge_weight(a, b) >= 0.0f;
  }

  /// Per-node degree. Requires finalize().
  std::vector<std::size_t> degrees() const;

  /// New network containing only edges with weight >= threshold.
  GeneNetwork thresholded(float threshold) const;

 private:
  std::vector<std::string> node_names_;
  std::vector<Edge> edges_;
  bool finalized_ = false;
};

/// CSR adjacency over a finalized network (neighbors sorted ascending).
class Adjacency {
 public:
  explicit Adjacency(const GeneNetwork& network);

  std::size_t n_nodes() const { return offsets_.size() - 1; }

  struct Neighbor {
    std::uint32_t node;
    float weight;
  };

  std::span<const Neighbor> neighbors(std::uint32_t node) const {
    TINGE_EXPECTS(node + 1 < offsets_.size());
    return {entries_.data() + offsets_[node],
            offsets_[node + 1] - offsets_[node]};
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<Neighbor> entries_;
};

/// Number of connected components (isolated nodes each count as one).
std::size_t connected_components(const GeneNetwork& network);

}  // namespace tinge
