#include "graph/metrics.h"

#include <algorithm>

#include "util/contracts.h"

namespace tinge {

Confusion compare_networks(const GeneNetwork& predicted,
                           const GeneNetwork& truth) {
  TINGE_EXPECTS(predicted.finalized() && truth.finalized());
  TINGE_EXPECTS(predicted.n_nodes() == truth.n_nodes());
  Confusion confusion;
  for (const Edge& e : predicted.edges()) {
    if (truth.has_edge(e.u, e.v)) {
      ++confusion.true_positive;
    } else {
      ++confusion.false_positive;
    }
  }
  confusion.false_negative = truth.n_edges() - confusion.true_positive;
  return confusion;
}

double average_precision(const GeneNetwork& scored, const GeneNetwork& truth) {
  TINGE_EXPECTS(scored.finalized() && truth.finalized());
  TINGE_EXPECTS(scored.n_nodes() == truth.n_nodes());
  if (truth.n_edges() == 0) return 0.0;

  std::vector<Edge> ranked(scored.edges().begin(), scored.edges().end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Edge& a, const Edge& b) { return a.weight > b.weight; });

  double sum_precision = 0.0;
  std::size_t hits = 0;
  for (std::size_t k = 0; k < ranked.size(); ++k) {
    if (truth.has_edge(ranked[k].u, ranked[k].v)) {
      ++hits;
      sum_precision +=
          static_cast<double>(hits) / static_cast<double>(k + 1);
    }
  }
  return sum_precision / static_cast<double>(truth.n_edges());
}

double auroc(const GeneNetwork& scored, const GeneNetwork& truth) {
  TINGE_EXPECTS(scored.finalized() && truth.finalized());
  TINGE_EXPECTS(scored.n_nodes() == truth.n_nodes());
  const std::size_t n = truth.n_nodes();
  const std::size_t total_pairs = n * (n - 1) / 2;
  const std::size_t positives = truth.n_edges();
  const std::size_t negatives = total_pairs - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::vector<Edge> ranked(scored.edges().begin(), scored.edges().end());
  std::sort(ranked.begin(), ranked.end(),
            [](const Edge& a, const Edge& b) { return a.weight > b.weight; });

  // Mann–Whitney U: for each positive, credit 1 per negative ranked strictly
  // below it and 0.5 per tied negative.
  double u_statistic = 0.0;
  std::size_t scored_neg_above = 0;  // negatives with strictly higher weight
  std::size_t scored_pos = 0;
  std::size_t scored_neg = 0;
  std::size_t i = 0;
  while (i < ranked.size()) {
    // Group of equal weights.
    std::size_t j = i;
    std::size_t group_pos = 0, group_neg = 0;
    while (j < ranked.size() && ranked[j].weight == ranked[i].weight) {
      if (truth.has_edge(ranked[j].u, ranked[j].v)) {
        ++group_pos;
      } else {
        ++group_neg;
      }
      ++j;
    }
    const std::size_t neg_below_group =
        negatives - scored_neg_above - group_neg;  // includes unscored
    u_statistic += static_cast<double>(group_pos) *
                   (static_cast<double>(neg_below_group) +
                    0.5 * static_cast<double>(group_neg));
    scored_neg_above += group_neg;
    scored_pos += group_pos;
    scored_neg += group_neg;
    i = j;
  }
  // Positives missing from `scored`: tied with all unscored negatives.
  const std::size_t unscored_pos = positives - scored_pos;
  const std::size_t unscored_neg = negatives - scored_neg;
  u_statistic += static_cast<double>(unscored_pos) * 0.5 *
                 static_cast<double>(unscored_neg);

  return u_statistic /
         (static_cast<double>(positives) * static_cast<double>(negatives));
}

std::vector<std::size_t> degree_histogram(const GeneNetwork& network) {
  const auto degrees = network.degrees();
  const std::size_t max_degree =
      degrees.empty() ? 0 : *std::max_element(degrees.begin(), degrees.end());
  std::vector<std::size_t> histogram(max_degree + 1, 0);
  for (const std::size_t d : degrees) ++histogram[d];
  return histogram;
}

}  // namespace tinge
