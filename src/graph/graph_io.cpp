#include "graph/graph_io.h"

#include <array>
#include <fstream>
#include <map>
#include <sstream>

#include "data/tsv_io.h"  // IoError
#include "util/str.h"

namespace tinge {

void write_edge_list(const GeneNetwork& network, std::ostream& out) {
  out << "# nodes: " << network.n_nodes() << '\n';
  for (const auto& name : network.node_names()) out << "# node\t" << name << '\n';
  for (const Edge& e : network.edges()) {
    out << network.node_names()[e.u] << '\t' << network.node_names()[e.v] << '\t'
        << strprintf("%.9g", static_cast<double>(e.weight)) << '\n';
  }
}

void write_edge_list_file(const GeneNetwork& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  write_edge_list(network, out);
  if (!out) throw IoError("write to " + path + " failed");
}

GeneNetwork read_edge_list(std::istream& in) {
  std::vector<std::string> names;
  std::map<std::string, std::uint32_t> index;
  std::vector<std::array<std::string, 3>> pending;

  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (starts_with(trimmed, "# node\t") ||
        starts_with(trimmed, "# node ")) {
      const auto fields = split_view(trimmed, '\t');
      if (fields.size() == 2) {
        const std::string name{trim(fields[1])};
        index.emplace(name, static_cast<std::uint32_t>(names.size()));
        names.push_back(name);
      }
      continue;
    }
    if (trimmed.front() == '#') continue;
    const auto fields = split_view(trimmed, '\t');
    if (fields.size() < 3)
      throw IoError("edge list row needs >= 3 tab-separated columns: " + line);
    pending.push_back({std::string(trim(fields[0])), std::string(trim(fields[1])),
                       std::string(trim(fields[2]))});
  }

  // Nodes mentioned only in edges (file without the node header) get ids in
  // order of first appearance.
  for (const auto& row : pending) {
    for (int side = 0; side < 2; ++side) {
      const std::string& name = row[static_cast<std::size_t>(side)];
      if (index.emplace(name, static_cast<std::uint32_t>(names.size())).second)
        names.push_back(name);
    }
  }

  GeneNetwork network(std::move(names));
  for (const auto& row : pending) {
    const auto weight = parse_float(row[2]);
    if (!weight) throw IoError("bad edge weight: " + row[2]);
    network.add_edge(index.at(row[0]), index.at(row[1]), *weight);
  }
  network.finalize();
  return network;
}

GeneNetwork read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list_with_pvalues(
    const GeneNetwork& network,
    const std::function<double(float)>& null_p_value, std::ostream& out) {
  out << "# nodes: " << network.n_nodes() << '\n';
  for (const auto& name : network.node_names()) out << "# node\t" << name << '\n';
  out << "# columns: gene_a\tgene_b\tmi_nats\tnull_p_value\n";
  for (const Edge& e : network.edges()) {
    out << network.node_names()[e.u] << '\t' << network.node_names()[e.v]
        << '\t' << strprintf("%.9g", static_cast<double>(e.weight)) << '\t'
        << strprintf("%.3g", null_p_value(e.weight)) << '\n';
  }
}

void write_edge_list_with_pvalues_file(
    const GeneNetwork& network,
    const std::function<double(float)>& null_p_value, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  write_edge_list_with_pvalues(network, null_p_value, out);
  if (!out) throw IoError("write to " + path + " failed");
}

void write_sif(const GeneNetwork& network, std::ostream& out) {
  for (const Edge& e : network.edges()) {
    out << network.node_names()[e.u] << "\tmi\t" << network.node_names()[e.v]
        << '\n';
  }
}

void write_sif_file(const GeneNetwork& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  write_sif(network, out);
  if (!out) throw IoError("write to " + path + " failed");
}

}  // namespace tinge
