#include "graph/network.h"

#include <algorithm>
#include <numeric>

namespace tinge {

GeneNetwork::GeneNetwork(std::vector<std::string> node_names)
    : node_names_(std::move(node_names)) {}

void GeneNetwork::add_edge(std::uint32_t a, std::uint32_t b, float weight) {
  TINGE_EXPECTS(a != b);
  TINGE_EXPECTS(a < n_nodes() && b < n_nodes());
  if (a > b) std::swap(a, b);
  edges_.push_back(Edge{a, b, weight});
  finalized_ = false;
}

void GeneNetwork::add_edges(std::span<const Edge> edges) {
  for (const Edge& e : edges) {
    TINGE_EXPECTS(e.u < e.v);
    TINGE_EXPECTS(e.v < n_nodes());
  }
  edges_.insert(edges_.end(), edges.begin(), edges.end());
  finalized_ = false;
}

void GeneNetwork::finalize() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  // merge duplicates keeping max weight
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].u == edges_[i].u &&
        edges_[out - 1].v == edges_[i].v) {
      edges_[out - 1].weight = std::max(edges_[out - 1].weight, edges_[i].weight);
    } else {
      edges_[out++] = edges_[i];
    }
  }
  edges_.resize(out);
  finalized_ = true;
}

float GeneNetwork::edge_weight(std::uint32_t a, std::uint32_t b) const {
  TINGE_EXPECTS(finalized_);
  if (a == b) return -1.0f;
  if (a > b) std::swap(a, b);
  const Edge probe{a, b, 0.0f};
  const auto it = std::lower_bound(
      edges_.begin(), edges_.end(), probe, [](const Edge& lhs, const Edge& rhs) {
        return lhs.u != rhs.u ? lhs.u < rhs.u : lhs.v < rhs.v;
      });
  if (it != edges_.end() && it->u == a && it->v == b) return it->weight;
  return -1.0f;
}

std::vector<std::size_t> GeneNetwork::degrees() const {
  TINGE_EXPECTS(finalized_);
  std::vector<std::size_t> degree(n_nodes(), 0);
  for (const Edge& e : edges_) {
    ++degree[e.u];
    ++degree[e.v];
  }
  return degree;
}

GeneNetwork GeneNetwork::thresholded(float threshold) const {
  GeneNetwork out(node_names_);
  for (const Edge& e : edges_)
    if (e.weight >= threshold) out.edges_.push_back(e);
  out.finalize();
  return out;
}

Adjacency::Adjacency(const GeneNetwork& network) {
  TINGE_EXPECTS(network.finalized());
  const std::size_t n = network.n_nodes();
  offsets_.assign(n + 1, 0);
  for (const Edge& e : network.edges()) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  entries_.resize(offsets_.back());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : network.edges()) {
    entries_[cursor[e.u]++] = Neighbor{e.v, e.weight};
    entries_[cursor[e.v]++] = Neighbor{e.u, e.weight};
  }
  for (std::size_t node = 0; node < n; ++node) {
    std::sort(entries_.begin() + static_cast<std::ptrdiff_t>(offsets_[node]),
              entries_.begin() + static_cast<std::ptrdiff_t>(offsets_[node + 1]),
              [](const Neighbor& a, const Neighbor& b) { return a.node < b.node; });
  }
}

namespace {
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};
}  // namespace

std::size_t connected_components(const GeneNetwork& network) {
  UnionFind uf(network.n_nodes());
  std::size_t components = network.n_nodes();
  for (const Edge& e : network.edges())
    if (uf.unite(e.u, e.v)) --components;
  return components;
}

}  // namespace tinge
