// Topological characterization of inferred networks.
//
// The paper's biological payoff is the Arabidopsis whole-genome network
// itself; networks of this kind are characterized by hub structure
// (scale-free-like degree distributions), local clustering and component
// structure. This module provides those summaries for any GeneNetwork —
// used by the genome_scale example and the recovery studies.
#pragma once

#include <string>
#include <vector>

#include "graph/network.h"

namespace tinge {

struct HubInfo {
  std::uint32_t node = 0;
  std::size_t degree = 0;
  std::string name;
};

/// The `count` highest-degree nodes, descending (ties by node id).
std::vector<HubInfo> top_hubs(const GeneNetwork& network, std::size_t count);

/// Global clustering coefficient: 3 * triangles / connected triples.
/// 0 for networks without any triple.
double global_clustering_coefficient(const GeneNetwork& network);

/// Local clustering coefficient of one node (0 for degree < 2).
double local_clustering_coefficient(const GeneNetwork& network,
                                    std::uint32_t node);

/// Maximum-likelihood (Hill) estimate of the power-law exponent gamma of
/// the degree distribution, P(k) ~ k^-gamma, over degrees >= k_min.
/// Scale-free biological networks typically land in gamma ~ 2..3;
/// Erdős–Rényi-like graphs produce larger, unstable estimates.
/// Returns 0 if fewer than `min_tail` nodes have degree >= k_min.
double powerlaw_exponent_mle(const GeneNetwork& network, std::size_t k_min = 2,
                             std::size_t min_tail = 10);

/// One-stop structural summary.
struct NetworkSummary {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t isolated_nodes = 0;
  std::size_t components = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  double clustering = 0.0;
  double powerlaw_gamma = 0.0;  ///< 0 when not estimable
};

NetworkSummary summarize_network(const GeneNetwork& network);

/// Human-readable rendering of a summary (one line per field).
std::string to_string(const NetworkSummary& summary);

}  // namespace tinge
