#include "graph/analysis.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/str.h"

namespace tinge {

std::vector<HubInfo> top_hubs(const GeneNetwork& network, std::size_t count) {
  TINGE_EXPECTS(network.finalized());
  const auto degrees = network.degrees();
  std::vector<std::uint32_t> order(degrees.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  count = std::min(count, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(count),
                    order.end(), [&](std::uint32_t a, std::uint32_t b) {
                      return degrees[a] != degrees[b] ? degrees[a] > degrees[b]
                                                      : a < b;
                    });
  std::vector<HubInfo> hubs;
  hubs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hubs.push_back(HubInfo{order[i], degrees[order[i]],
                           network.node_names()[order[i]]});
  }
  return hubs;
}

namespace {
// Counts triangles containing each edge via sorted-adjacency intersection;
// every triangle is counted once (witness z > v).
std::size_t count_triangles(const GeneNetwork& network) {
  const Adjacency adjacency(network);
  std::size_t triangles = 0;
  for (const Edge& e : network.edges()) {
    const auto nu = adjacency.neighbors(e.u);
    const auto nv = adjacency.neighbors(e.v);
    std::size_t iu = 0, iv = 0;
    while (iu < nu.size() && iv < nv.size()) {
      if (nu[iu].node < nv[iv].node) {
        ++iu;
      } else if (nu[iu].node > nv[iv].node) {
        ++iv;
      } else {
        if (nu[iu].node > e.v) ++triangles;
        ++iu;
        ++iv;
      }
    }
  }
  return triangles;
}
}  // namespace

double global_clustering_coefficient(const GeneNetwork& network) {
  TINGE_EXPECTS(network.finalized());
  const auto degrees = network.degrees();
  std::size_t triples = 0;
  for (const std::size_t d : degrees)
    if (d >= 2) triples += d * (d - 1) / 2;
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles(network)) /
         static_cast<double>(triples);
}

double local_clustering_coefficient(const GeneNetwork& network,
                                    std::uint32_t node) {
  TINGE_EXPECTS(network.finalized());
  TINGE_EXPECTS(node < network.n_nodes());
  const Adjacency adjacency(network);
  const auto neighbors = adjacency.neighbors(node);
  if (neighbors.size() < 2) return 0.0;
  std::size_t links = 0;
  for (std::size_t a = 0; a < neighbors.size(); ++a)
    for (std::size_t b = a + 1; b < neighbors.size(); ++b)
      if (network.has_edge(neighbors[a].node, neighbors[b].node)) ++links;
  const std::size_t possible = neighbors.size() * (neighbors.size() - 1) / 2;
  return static_cast<double>(links) / static_cast<double>(possible);
}

double powerlaw_exponent_mle(const GeneNetwork& network, std::size_t k_min,
                             std::size_t min_tail) {
  TINGE_EXPECTS(network.finalized());
  TINGE_EXPECTS(k_min >= 1);
  const auto degrees = network.degrees();
  // Continuous-approximation Hill estimator with the standard -1/2
  // discreteness correction (Clauset, Shalizi & Newman 2009, eq. 3.7):
  //   gamma = 1 + n / sum ln(k_i / (k_min - 1/2))
  double log_sum = 0.0;
  std::size_t tail = 0;
  const double shifted_min = static_cast<double>(k_min) - 0.5;
  for (const std::size_t k : degrees) {
    if (k >= k_min) {
      log_sum += std::log(static_cast<double>(k) / shifted_min);
      ++tail;
    }
  }
  if (tail < min_tail || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(tail) / log_sum;
}

NetworkSummary summarize_network(const GeneNetwork& network) {
  TINGE_EXPECTS(network.finalized());
  NetworkSummary summary;
  summary.nodes = network.n_nodes();
  summary.edges = network.n_edges();
  summary.components = connected_components(network);
  const auto degrees = network.degrees();
  std::size_t degree_sum = 0;
  for (const std::size_t d : degrees) {
    if (d == 0) ++summary.isolated_nodes;
    summary.max_degree = std::max(summary.max_degree, d);
    degree_sum += d;
  }
  summary.mean_degree =
      summary.nodes > 0
          ? static_cast<double>(degree_sum) / static_cast<double>(summary.nodes)
          : 0.0;
  summary.clustering = global_clustering_coefficient(network);
  summary.powerlaw_gamma = powerlaw_exponent_mle(network);
  return summary;
}

std::string to_string(const NetworkSummary& summary) {
  std::string out;
  out += strprintf("nodes:            %zu (%zu isolated)\n", summary.nodes,
                   summary.isolated_nodes);
  out += strprintf("edges:            %zu (mean degree %.2f, max %zu)\n",
                   summary.edges, summary.mean_degree, summary.max_degree);
  out += strprintf("components:       %zu\n", summary.components);
  out += strprintf("clustering coeff: %.4f\n", summary.clustering);
  if (summary.powerlaw_gamma > 0.0) {
    out += strprintf("power-law gamma:  %.2f (degree tail MLE)\n",
                     summary.powerlaw_gamma);
  } else {
    out += "power-law gamma:  not estimable (tail too small)\n";
  }
  return out;
}

}  // namespace tinge
