// Network-recovery metrics against a known ground truth.
//
// The paper infers a network for which no ground truth exists; our synthetic
// substitute (src/synth) provides one, so we can additionally score how well
// each estimator recovers the generating topology (experiment A1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/network.h"

namespace tinge {

struct Confusion {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  double precision() const {
    const std::size_t denom = true_positive + false_positive;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positive) /
                            static_cast<double>(denom);
  }
  double recall() const {
    const std::size_t denom = true_positive + false_negative;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positive) /
                            static_cast<double>(denom);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Edge-set comparison; both networks must be finalized over the same node
/// universe (undirected, weights ignored).
Confusion compare_networks(const GeneNetwork& predicted,
                           const GeneNetwork& truth);

/// Area under the precision–recall curve (average precision): ranks the
/// predicted edges by descending weight and averages precision at each
/// recalled true edge. Ties in weight are handled by order of appearance.
double average_precision(const GeneNetwork& scored, const GeneNetwork& truth);

/// Area under the ROC curve of the edge ranking: the probability that a
/// uniformly random true edge is ranked above a uniformly random non-edge.
/// Pairs absent from `scored` rank below every scored edge (tied among
/// themselves); equal weights share credit (Mann–Whitney tie handling).
/// Returns 0.5 for an empty truth or an empty complement.
double auroc(const GeneNetwork& scored, const GeneNetwork& truth);

/// degree -> node count, indexed by degree (size = max degree + 1).
std::vector<std::size_t> degree_histogram(const GeneNetwork& network);

}  // namespace tinge
