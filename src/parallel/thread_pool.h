// Persistent worker-thread pool with fork/join parallel regions.
//
// The paper keeps its 244 (Phi) / 32 (Xeon) threads alive for the whole
// network construction and repeatedly runs SPMD regions over them; spawning
// threads per tile would dominate at that scale. ThreadPool mirrors that
// model: workers are created once, a region `body(tid, nthreads)` is
// executed by `nthreads` contexts (the caller participates as tid 0), and
// run() returns when every context has finished.
//
// Oversubscription is allowed and deliberate: the thread-scaling experiment
// (Figure F1) sweeps past the physical core count exactly as the paper
// sweeps past the Phi's core count into its 4-way SMT region.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/affinity.h"
#include "parallel/topology.h"
#include "util/timer.h"

namespace tinge::par {

class ThreadPool {
 public:
  /// Creates a pool able to run regions of up to `max_threads` contexts
  /// (max_threads - 1 OS worker threads are spawned; the caller is the
  /// extra context). Placement pins workers according to `topo`.
  explicit ThreadPool(int max_threads,
                      Placement placement = Placement::None,
                      Topology topo = detect_host_topology());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Maximum region width this pool supports.
  int max_threads() const { return max_threads_; }

  /// Executes body(tid, nthreads) on `nthreads` contexts concurrently.
  /// tid 0 runs on the calling thread. Must not be called re-entrantly
  /// from inside a region. Exceptions thrown by any context are rethrown
  /// on the caller (first one wins).
  void run(int nthreads, const std::function<void(int, int)>& body);

  /// Process-wide pool sized to the host's hardware concurrency.
  static ThreadPool& global();

  // --- observability (obs manifest's pool section) -----------------------
  // Busy time is measured around each context's region-body execution with
  // two clock reads per region — regions wrap whole passes, so the cost is
  // noise. Idle time is lifetime minus busy.

  /// Cumulative seconds context slot `tid` has spent executing region
  /// bodies across all run() calls.
  double busy_seconds(int tid) const;
  /// Busy seconds for every context slot, indexed by tid.
  std::vector<double> busy_seconds_all() const;
  /// Wall seconds since the pool was constructed.
  double lifetime_seconds() const { return lifetime_.seconds(); }
  /// Number of run() regions executed (including width-1 shortcuts).
  std::uint64_t regions_run() const {
    return regions_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(int worker_index);
  void add_busy(int tid, double seconds);

  const int max_threads_;
  std::vector<std::thread> workers_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_micros_;  // per tid
  std::atomic<std::uint64_t> regions_{0};
  Stopwatch lifetime_;

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int, int)>* body_ = nullptr;  // valid during a region
  int region_width_ = 0;       // contexts in the active region
  std::uint64_t generation_ = 0;
  int claimed_ = 0;            // worker contexts handed out this region
  int finished_ = 0;           // worker contexts completed this region
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace tinge::par
