// Sense-reversing spin barrier.
//
// The Phi implementation in the paper keeps all 244 threads alive across
// tiles and synchronizes with lightweight barriers rather than fork/join.
// std::barrier parks threads in the kernel, which is the right default;
// SpinBarrier is the low-latency alternative used inside tight phases and
// benchmarked against it.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/contracts.h"

namespace tinge::par {

class SpinBarrier {
 public:
  explicit SpinBarrier(int participants) : participants_(participants) {
    TINGE_EXPECTS(participants > 0);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all participants have arrived. Reusable.
  void arrive_and_wait() {
    const std::uint32_t my_sense = sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense + 1, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) == my_sense) {
        // busy wait; yield periodically so oversubscribed runs make progress
        if (++spins < 1024) {
          spin_pause();
        } else {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  static void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  const int participants_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint32_t> sense_{0};
};

}  // namespace tinge::par
