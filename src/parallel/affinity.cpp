#include "parallel/affinity.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tinge::par {

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int current_cpu() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::None: return "none";
    case Placement::Scatter: return "scatter";
    case Placement::Compact: return "compact";
  }
  return "?";
}

}  // namespace tinge::par
