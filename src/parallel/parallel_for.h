// Loop-level parallelism over index ranges.
//
// The MI engine distributes tiles of gene pairs with *dynamic* scheduling —
// the paper's choice, because edge tiles (triangular remainder) and cache
// effects make tile cost non-uniform. Static and guided schedules are kept
// for the scheduling ablation in the thread-scaling benchmark.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "parallel/thread_pool.h"
#include "util/contracts.h"

namespace tinge::par {

enum class Schedule {
  Static,   ///< one contiguous slice per thread
  Dynamic,  ///< threads grab fixed-size chunks from a shared counter
  Guided,   ///< chunk size decays with remaining work
};

inline const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::Static: return "static";
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Guided: return "guided";
  }
  return "?";
}

/// Runs body(chunk_begin, chunk_end, tid) over [begin, end) on `nthreads`
/// contexts of `pool`. `grain` is the minimum chunk size (>= 1).
template <typename Body>
void parallel_for(ThreadPool& pool, int nthreads, std::size_t begin,
                  std::size_t end, std::size_t grain, Schedule schedule,
                  Body&& body) {
  TINGE_EXPECTS(begin <= end);
  TINGE_EXPECTS(grain >= 1);
  if (begin == end) return;
  const std::size_t count = end - begin;
  nthreads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(nthreads), count));
  nthreads = std::max(nthreads, 1);

  if (nthreads == 1) {
    body(begin, end, 0);
    return;
  }

  std::atomic<std::size_t> next{begin};

  pool.run(nthreads, [&](int tid, int width) {
    switch (schedule) {
      case Schedule::Static: {
        const std::size_t per = count / static_cast<std::size_t>(width);
        const std::size_t extra = count % static_cast<std::size_t>(width);
        const auto utid = static_cast<std::size_t>(tid);
        const std::size_t lo =
            begin + utid * per + std::min(utid, extra);
        const std::size_t hi = lo + per + (utid < extra ? 1 : 0);
        if (lo < hi) body(lo, hi, tid);
        break;
      }
      case Schedule::Dynamic: {
        while (true) {
          const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
          if (lo >= end) break;
          body(lo, std::min(lo + grain, end), tid);
        }
        break;
      }
      case Schedule::Guided: {
        while (true) {
          std::size_t lo = next.load(std::memory_order_relaxed);
          std::size_t chunk = 0;
          do {
            if (lo >= end) return;
            const std::size_t remaining = end - lo;
            chunk = std::max(grain,
                             remaining / (2 * static_cast<std::size_t>(width)));
            chunk = std::min(chunk, remaining);
          } while (!next.compare_exchange_weak(lo, lo + chunk,
                                               std::memory_order_relaxed));
          body(lo, lo + chunk, tid);
        }
        break;
      }
    }
  });
}

/// Single-threaded-pool-free overload for quick call sites; uses the global
/// pool with all hardware threads and dynamic scheduling.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  ThreadPool& pool = ThreadPool::global();
  parallel_for(pool, pool.max_threads(), begin, end, grain, Schedule::Dynamic,
               std::forward<Body>(body));
}

}  // namespace tinge::par
