#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/contracts.h"

namespace tinge::par {

ThreadPool::ThreadPool(int max_threads, Placement placement, Topology topo)
    : max_threads_(max_threads),
      busy_micros_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
          std::max(max_threads, 1))]) {
  TINGE_EXPECTS(max_threads >= 1);
  for (int t = 0; t < max_threads; ++t) busy_micros_[t].store(0);
  if (placement != Placement::None) {
    const int cpu = placement == Placement::Scatter ? topo.scatter_cpu(0)
                                                    : topo.compact_cpu(0);
    pin_current_thread(cpu);
  }
  workers_.reserve(static_cast<std::size_t>(max_threads - 1));
  for (int w = 0; w < max_threads - 1; ++w) {
    workers_.emplace_back([this, w, placement, topo] {
      if (placement != Placement::None) {
        const int logical = w + 1;  // caller owns logical thread 0
        const int cpu = placement == Placement::Scatter
                            ? topo.scatter_cpu(logical)
                            : topo.compact_cpu(logical);
        pin_current_thread(cpu);
      }
      worker_loop(w);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(int /*worker_index*/) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(int, int)>* body = nullptr;
    int width = 0;
    int tid = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      // Claim a context if the region still needs one; otherwise sleep on.
      if (claimed_ < region_width_ - 1) {
        tid = ++claimed_;  // tids 1..width-1; the caller is tid 0
        body = body_;
        width = region_width_;
      }
    }
    if (tid < 0) continue;

    std::exception_ptr error;
    const Stopwatch busy_watch;
    try {
      (*body)(tid, width);
    } catch (...) {
      error = std::current_exception();
    }
    add_busy(tid, busy_watch.seconds());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      ++finished_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::run(int nthreads, const std::function<void(int, int)>& body) {
  TINGE_EXPECTS(nthreads >= 1);
  TINGE_EXPECTS(nthreads <= max_threads_);
  regions_.fetch_add(1, std::memory_order_relaxed);

  if (nthreads == 1) {
    const Stopwatch busy_watch;
    body(0, 1);
    add_busy(0, busy_watch.seconds());
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    TINGE_EXPECTS(body_ == nullptr);  // no re-entrant regions
    body_ = &body;
    region_width_ = nthreads;
    claimed_ = 0;
    finished_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr caller_error;
  const Stopwatch busy_watch;
  try {
    body(0, nthreads);
  } catch (...) {
    caller_error = std::current_exception();
  }
  add_busy(0, busy_watch.seconds());

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return finished_ == region_width_ - 1; });
  body_ = nullptr;
  region_width_ = 0;
  const std::exception_ptr worker_error = first_error_;
  first_error_ = nullptr;
  lock.unlock();

  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

void ThreadPool::add_busy(int tid, double seconds) {
  busy_micros_[tid].fetch_add(static_cast<std::uint64_t>(seconds * 1e6),
                              std::memory_order_relaxed);
}

double ThreadPool::busy_seconds(int tid) const {
  TINGE_EXPECTS(tid >= 0 && tid < max_threads_);
  return static_cast<double>(
             busy_micros_[tid].load(std::memory_order_relaxed)) *
         1e-6;
}

std::vector<double> ThreadPool::busy_seconds_all() const {
  std::vector<double> busy(static_cast<std::size_t>(max_threads_));
  for (int t = 0; t < max_threads_; ++t) busy[static_cast<std::size_t>(t)] = busy_seconds(t);
  return busy;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(detect_host_topology().total_threads());
  return pool;
}

}  // namespace tinge::par
