// Processor topology description.
//
// The Xeon Phi exposes its parallelism as cores x hardware-threads
// (61 x 4 on the 5110P); the paper's scheduler reasons in those terms
// (spread first across cores, then across a core's thread contexts).
// Topology captures that shape both for the real host and for the modeled
// devices in src/device.
#pragma once

#include <string>
#include <vector>

namespace tinge::par {

struct Topology {
  int cores = 1;
  int threads_per_core = 1;

  int total_threads() const { return cores * threads_per_core; }

  /// "4 cores x 2 threads (8 contexts)"
  std::string to_string() const;

  /// Maps a logical thread id to the OS CPU it should be pinned to under
  /// a scatter (core-first) policy: consecutive logical ids land on
  /// different cores before doubling up on SMT siblings. Assumes the
  /// common Linux enumeration where sibling s of core c is cpu c + s*cores.
  int scatter_cpu(int logical_thread) const;

  /// Compact (core-fill) policy: fill all thread contexts of a core before
  /// moving to the next core — the Phi-native placement for bandwidth-bound
  /// kernels sharing a core's L2.
  int compact_cpu(int logical_thread) const;
};

/// Queries the machine this process runs on (Linux sysfs; falls back to
/// hardware_concurrency with 1 thread/core).
Topology detect_host_topology();

/// NUMA shape of the host: how many memory nodes there are and which node
/// each OS CPU belongs to. Drives the sweep's NUMA-aware tile scheduling
/// (core/sweep.h): rank rows are first-touched per node and tiles are
/// preferentially executed by threads on the node owning their row genes.
struct NumaLayout {
  int nodes = 1;
  /// cpu_node[cpu] = node of OS CPU `cpu`; empty on single-node hosts.
  std::vector<int> cpu_node;

  /// Node of OS CPU `cpu` (0 when unknown / single-node).
  int node_of_cpu(int cpu) const {
    if (cpu < 0 || cpu >= static_cast<int>(cpu_node.size())) return 0;
    return cpu_node[static_cast<std::size_t>(cpu)];
  }
};

/// Reads /sys/devices/system/node; returns a single-node layout when the
/// sysfs tree is absent (non-Linux, containers with masked sysfs).
NumaLayout detect_numa_layout();

}  // namespace tinge::par
