// Processor topology description.
//
// The Xeon Phi exposes its parallelism as cores x hardware-threads
// (61 x 4 on the 5110P); the paper's scheduler reasons in those terms
// (spread first across cores, then across a core's thread contexts).
// Topology captures that shape both for the real host and for the modeled
// devices in src/device.
#pragma once

#include <string>

namespace tinge::par {

struct Topology {
  int cores = 1;
  int threads_per_core = 1;

  int total_threads() const { return cores * threads_per_core; }

  /// "4 cores x 2 threads (8 contexts)"
  std::string to_string() const;

  /// Maps a logical thread id to the OS CPU it should be pinned to under
  /// a scatter (core-first) policy: consecutive logical ids land on
  /// different cores before doubling up on SMT siblings. Assumes the
  /// common Linux enumeration where sibling s of core c is cpu c + s*cores.
  int scatter_cpu(int logical_thread) const;

  /// Compact (core-fill) policy: fill all thread contexts of a core before
  /// moving to the next core — the Phi-native placement for bandwidth-bound
  /// kernels sharing a core's L2.
  int compact_cpu(int logical_thread) const;
};

/// Queries the machine this process runs on (Linux sysfs; falls back to
/// hardware_concurrency with 1 thread/core).
Topology detect_host_topology();

}  // namespace tinge::par
