#include "parallel/topology.h"

#include <algorithm>
#include <fstream>
#include <thread>
#include <vector>

#include "util/contracts.h"
#include "util/str.h"

namespace tinge::par {

std::string Topology::to_string() const {
  return strprintf("%d cores x %d threads (%d contexts)", cores,
                   threads_per_core, total_threads());
}

int Topology::scatter_cpu(int logical_thread) const {
  TINGE_EXPECTS(logical_thread >= 0);
  const int t = logical_thread % total_threads();
  const int core = t % cores;
  const int sibling = t / cores;
  return sibling * cores + core;
}

int Topology::compact_cpu(int logical_thread) const {
  TINGE_EXPECTS(logical_thread >= 0);
  const int t = logical_thread % total_threads();
  const int core = t / threads_per_core;
  const int sibling = t % threads_per_core;
  return sibling * cores + core;
}

Topology detect_host_topology() {
  Topology topo;
  const int logical = static_cast<int>(std::thread::hardware_concurrency());
  topo.cores = logical > 0 ? logical : 1;
  topo.threads_per_core = 1;

  // thread_siblings_list is "0,32" or "0-1" style; count entries to get SMT.
  std::ifstream siblings("/sys/devices/system/cpu/cpu0/topology/thread_siblings_list");
  if (siblings) {
    std::string line;
    std::getline(siblings, line);
    int count = 0;
    for (const auto field : split_view(line, ',')) {
      const auto range = split_view(field, '-');
      if (range.size() == 2) {
        const auto lo = parse_int(range[0]);
        const auto hi = parse_int(range[1]);
        if (lo && hi && *hi >= *lo) count += static_cast<int>(*hi - *lo + 1);
      } else if (!trim(field).empty()) {
        ++count;
      }
    }
    if (count > 1 && topo.cores % count == 0) {
      topo.threads_per_core = count;
      topo.cores /= count;
    }
  }
  return topo;
}

namespace {

// Parses a sysfs cpulist ("0-3,8-11" style) into CPU ids.
std::vector<int> parse_cpulist(const std::string& line) {
  std::vector<int> cpus;
  for (const auto field : split_view(line, ',')) {
    const auto range = split_view(field, '-');
    if (range.size() == 2) {
      const auto lo = parse_int(range[0]);
      const auto hi = parse_int(range[1]);
      if (lo && hi && *hi >= *lo) {
        for (long c = *lo; c <= *hi; ++c) cpus.push_back(static_cast<int>(c));
      }
    } else if (!trim(field).empty()) {
      if (const auto c = parse_int(trim(field))) {
        cpus.push_back(static_cast<int>(*c));
      }
    }
  }
  return cpus;
}

}  // namespace

NumaLayout detect_numa_layout() {
  NumaLayout layout;
  std::vector<std::vector<int>> node_cpus;
  for (int node = 0;; ++node) {
    std::ifstream cpulist(strprintf(
        "/sys/devices/system/node/node%d/cpulist", node));
    if (!cpulist) break;
    std::string line;
    std::getline(cpulist, line);
    node_cpus.push_back(parse_cpulist(line));
  }
  if (node_cpus.size() <= 1) return layout;  // single node: nothing to place

  layout.nodes = static_cast<int>(node_cpus.size());
  int max_cpu = -1;
  for (const auto& cpus : node_cpus)
    for (const int c : cpus) max_cpu = std::max(max_cpu, c);
  layout.cpu_node.assign(static_cast<std::size_t>(max_cpu + 1), 0);
  for (int node = 0; node < layout.nodes; ++node)
    for (const int c : node_cpus[static_cast<std::size_t>(node)])
      layout.cpu_node[static_cast<std::size_t>(c)] = node;
  return layout;
}

}  // namespace tinge::par
