// Per-thread accumulation without false sharing.
//
// Each logical thread owns a cache-line-padded slot; the combine step runs
// on the caller after the region ends. This is how the MI engine collects
// per-thread edge counts and stage timings.
#pragma once

#include <vector>

#include "util/aligned.h"
#include "util/contracts.h"

namespace tinge::par {

template <typename T>
class PerThread {
 public:
  explicit PerThread(int nthreads, const T& initial = T{})
      : slots_(static_cast<std::size_t>(nthreads)) {
    TINGE_EXPECTS(nthreads >= 1);
    for (auto& slot : slots_) slot.value = initial;
  }

  T& local(int tid) {
    TINGE_EXPECTS(tid >= 0 && static_cast<std::size_t>(tid) < slots_.size());
    return slots_[static_cast<std::size_t>(tid)].value;
  }

  const T& local(int tid) const {
    TINGE_EXPECTS(tid >= 0 && static_cast<std::size_t>(tid) < slots_.size());
    return slots_[static_cast<std::size_t>(tid)].value;
  }

  int size() const { return static_cast<int>(slots_.size()); }

  /// Folds all slots with `op` starting from `seed`.
  template <typename U, typename Op>
  U combine(U seed, Op&& op) const {
    for (const auto& slot : slots_) seed = op(seed, slot.value);
    return seed;
  }

 private:
  struct alignas(kSimdAlignment) Slot {
    T value;
  };
  std::vector<Slot> slots_;
};

}  // namespace tinge::par
