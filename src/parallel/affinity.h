// Thread-to-CPU pinning. On the Phi, thread placement (compact vs scatter)
// is a first-order performance knob because four hardware threads share a
// core's L2; we expose the same knob. No-ops cleanly where unsupported.
#pragma once

namespace tinge::par {

enum class Placement {
  None,     ///< leave scheduling to the OS
  Scatter,  ///< one thread per core before using SMT siblings
  Compact,  ///< fill a core's SMT contexts before the next core
};

/// Pins the calling thread to `cpu`. Returns false if pinning failed or is
/// unsupported on this platform (the computation proceeds unpinned).
bool pin_current_thread(int cpu);

/// OS CPU the calling thread is running on right now, or -1 where the
/// query is unsupported. A scheduling hint, not a guarantee — an unpinned
/// thread may migrate the instant after the call returns.
int current_cpu();

const char* placement_name(Placement p);

}  // namespace tinge::par
