// Minimal JSON document model for the observability layer.
//
// The run manifest (obs/manifest.h, core/run_manifest.h) must be written as
// *stable* machine-readable JSON — key order is insertion order so two runs
// with the same configuration produce byte-comparable documents — and the
// regression tests must be able to parse a manifest back and assert on its
// structure. Both directions live here so the schema has exactly one
// serialization. This is a document model for small reports, not a
// streaming parser for gigabyte inputs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace tinge::obs {

/// Malformed document handed to Json::parse.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;                      ///< null
  Json(std::nullptr_t) {}                ///< null
  Json(bool value) : type_(Type::Bool), bool_(value) {}
  Json(double value) : type_(Type::Number), number_(value) {}
  Json(const char* value) : type_(Type::String), string_(value) {}
  Json(std::string value) : type_(Type::String), string_(std::move(value)) {}
  Json(std::string_view value) : type_(Type::String), string_(value) {}
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Json(T value) : type_(Type::Number), number_(static_cast<double>(value)) {}

  static Json object() { Json j; j.type_ = Type::Object; return j; }
  static Json array() { Json j; j.type_ = Type::Array; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_bool() const { return type_ == Type::Bool; }

  double as_double() const;
  std::int64_t as_int() const;
  bool as_bool() const;
  const std::string& as_string() const;

  /// Object: get-or-append the member `key` (insertion order preserved).
  Json& operator[](std::string_view key);
  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  /// Object lookup; throws JsonError when absent.
  const Json& at(std::string_view key) const;

  /// Array append.
  void push_back(Json value);
  /// Array element.
  const Json& at(std::size_t index) const;

  /// Array elements / object member count.
  std::size_t size() const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  const std::vector<Json>& elements() const { return elements_; }

  /// Serializes with 2-space indentation and insertion-ordered keys.
  /// Numbers that hold integral values print without a fraction; other
  /// numbers print with enough digits (%.17g) to round-trip a double.
  std::string dump() const;

  /// Parses a complete JSON document; throws JsonError on malformed input
  /// or trailing garbage.
  static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;                         // Array
  std::vector<std::pair<std::string, Json>> members_;  // Object
};

}  // namespace tinge::obs
