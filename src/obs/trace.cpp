#include "obs/trace.h"

#include "util/contracts.h"
#include "util/str.h"

namespace tinge::obs {

Trace::Trace() : root_(std::make_unique<SpanNode>()) {
  root_->name = "run";
  open_.push_back(root_.get());
}

TraceSpan::TraceSpan(Trace& trace, std::string name) : trace_(trace) {
  SpanNode* parent = trace_.open_.back();
  parent->children.push_back(std::make_unique<SpanNode>());
  node_ = parent->children.back().get();
  node_->name = std::move(name);
  trace_.open_.push_back(node_);
}

TraceSpan::~TraceSpan() {
  node_->seconds = watch_.seconds();
  // Spans close in reverse-open order (they are scoped objects).
  TINGE_EXPECTS(trace_.open_.back() == node_);
  trace_.open_.pop_back();
}

const SpanNode* find_span(const SpanNode& root, std::string_view name) {
  if (root.name == name) return &root;
  for (const auto& child : root.children)
    if (const SpanNode* found = find_span(*child, name)) return found;
  return nullptr;
}

double span_seconds(const SpanNode& root, std::string_view name) {
  const SpanNode* span = find_span(root, name);
  return span != nullptr ? span->seconds : 0.0;
}

namespace {

void format_node(const SpanNode& node, const SpanNode* parent, int depth,
                 std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  const double share = parent != nullptr && parent->seconds > 0.0
                           ? 100.0 * node.seconds / parent->seconds
                           : 100.0;
  out += strprintf("%-24s %10.3f s  %5.1f%%\n", node.name.c_str(),
                   node.seconds, share);
  for (const auto& child : node.children)
    format_node(*child, &node, depth + 1, out);
}

}  // namespace

std::string format_trace(const SpanNode& root) {
  std::string out;
  format_node(root, nullptr, 0, out);
  return out;
}

}  // namespace tinge::obs
