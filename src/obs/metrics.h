// Structured metrics for the whole pipeline.
//
// The paper's claims are throughput numbers, and the ROADMAP's production
// target needs machine-readable accounting rather than ad-hoc printfs: this
// module provides monotonic Counters, last-write Gauges and sample
// Histograms registered by name in a MetricsRegistry. Instrumented layers
// (engine, null builder, checkpoint journal, cluster transport, thread
// pool) tally locally in their hot loops and publish *deltas* into the
// process-wide registry when a pass finishes — so observability never adds
// work per pair, only per run. Reports (core/run_manifest.h) snapshot the
// registry before and after a run and serialize the difference.
//
// Thread-safety: Counter/Gauge methods are lock-free atomics callable from
// any thread; Histogram::record and registry get-or-create take a mutex
// (both are per-pass, not per-pair, operations).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.h"

namespace tinge::obs {

/// Monotonic event count. add() is race-free and wait-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (resolved panel width, rank count...).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Sample distribution (stage latencies, per-tile durations, per-query
/// serve latencies). count/sum/min/max are exact over everything ever
/// recorded; quantiles come from a bounded reservoir (uniform subsample,
/// deterministic replacement), so a long-lived server recording per-query
/// values holds O(kReservoirCapacity) memory per histogram instead of
/// growing without bound — and summary() stays O(capacity), not O(lifetime
/// queries), which matters because the serve path reads summaries live
/// while writers keep recording.
class Histogram {
 public:
  /// Samples retained for quantile estimation. Below this many recordings
  /// the quantiles are exact; past it they are estimates over a uniform
  /// subsample (Vitter's algorithm R with a fixed-seed LCG — deterministic
  /// for a given record() sequence).
  static constexpr std::size_t kReservoirCapacity = 4096;

  void record(double value);

  /// Total recordings ever (exact, not the retained-sample count).
  std::uint64_t count() const;
  double sum() const;
  /// Nearest-rank quantile, q in [0, 1]; 0.0 on an empty histogram.
  double quantile(double q) const;
  HistogramSummary summary() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;  // bounded reservoir (quantiles only)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;
};

/// Records elapsed seconds into a histogram on destruction.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram)
      : histogram_(histogram) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer() { histogram_.record(watch_.seconds()); }

 private:
  Histogram& histogram_;
  Stopwatch watch_;
};

/// Point-in-time view of a registry; counter maps are diffable across a run.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

/// Run-scoped view: counters become after-minus-before (entries that did not
/// move are dropped); gauges and histograms keep their `after` state.
MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

/// Named instrument store. counter()/gauge()/histogram() get-or-create;
/// returned references stay valid for the registry's lifetime, so call
/// sites resolve names once and hold the reference across a hot pass.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Safe to call while writers are live (the serve path reads it
  /// per-request for progress streaming): the registry lock is held only
  /// to enumerate the instruments, never across histogram summarization,
  /// so a snapshot cannot stall concurrent get-or-create or record calls.
  MetricsSnapshot snapshot() const;

  /// The process-wide registry every instrumented layer emits into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace tinge::obs
