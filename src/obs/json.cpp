#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace tinge::obs {

double Json::as_double() const {
  if (type_ != Type::Number) throw JsonError("not a number");
  return number_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::Number) throw JsonError("not a number");
  return static_cast<std::int64_t>(number_);
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("not a bool");
  return bool_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw JsonError("not a string");
  return string_;
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) throw JsonError("not an object");
  for (auto& [name, value] : members_)
    if (name == key) return value;
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) throw JsonError("missing key: " + std::string(key));
  return *found;
}

void Json::push_back(Json value) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) throw JsonError("not an array");
  elements_.push_back(std::move(value));
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::Array) throw JsonError("not an array");
  if (index >= elements_.size()) throw JsonError("array index out of range");
  return elements_[index];
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return elements_.size();
  if (type_ == Type::Object) return members_.size();
  return 0;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::Null: return true;
    case Json::Type::Bool: return a.bool_ == b.bool_;
    case Json::Type::Number: return a.number_ == b.number_;
    case Json::Type::String: return a.string_ == b.string_;
    case Json::Type::Array: return a.elements_ == b.elements_;
    case Json::Type::Object: return a.members_ == b.members_;
  }
  return false;
}

// ---- serialization ---------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {  // 2^53: exact in a double
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out += buf;
  } else if (std::isfinite(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
  } else {
    out += "null";  // JSON has no Inf/NaN; null keeps the document parseable
  }
}

void append_indent(std::string& out, int indent) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, number_); break;
    case Type::String: append_escaped(out, string_); break;
    case Type::Array: {
      if (elements_.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        append_indent(out, indent + 1);
        elements_[i].dump_to(out, indent + 1);
        if (i + 1 < elements_.size()) out += ',';
      }
      append_indent(out, indent);
      out += ']';
      break;
    }
    case Type::Object: {
      if (members_.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        append_indent(out, indent + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent + 1);
        if (i + 1 < members_.size()) out += ',';
      }
      append_indent(out, indent);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

// ---- parsing ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    if (peek() == '}') { ++pos_; return object; }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      object[key] = parse_value();
      const char next = peek();
      ++pos_;
      if (next == '}') return object;
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    if (peek() == ']') { ++pos_; return array; }
    while (true) {
      array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return array;
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The manifest only escapes control characters; encode the code
          // point as UTF-8 (no surrogate-pair handling needed for < 0x80,
          // and a best-effort 2/3-byte encoding above that).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_) fail("bad number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace tinge::obs
