// JSON serialization of the observability primitives.
//
// The run manifest assembled in core/run_manifest.h is the pipeline-shaped
// document; this header owns the generic pieces: span tree -> JSON,
// metrics snapshot -> JSON, and the atomic-ish file write (temp + rename
// would need platform code; a plain write of a small document is enough —
// the consumer is a test harness or a metrics scraper, not a journal).
#pragma once

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tinge::obs {

/// {"name": ..., "seconds": ..., "children": [...]} recursively. Children
/// are serialized in execution order.
Json span_to_json(const SpanNode& node);

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// min, max, p50, p90, p99}}} with keys in lexicographic order.
Json metrics_to_json(const MetricsSnapshot& snapshot);

/// Writes `document.dump()` to `path`; throws std::runtime_error on I/O
/// failure.
void write_json_file(const Json& document, const std::string& path);

/// Reads and parses a JSON file; throws std::runtime_error / JsonError.
Json read_json_file(const std::string& path);

}  // namespace tinge::obs
