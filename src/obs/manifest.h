// JSON serialization of the observability primitives.
//
// The run manifest assembled in core/run_manifest.h is the pipeline-shaped
// document; this header owns the generic pieces: span tree -> JSON,
// metrics snapshot -> JSON, and the atomic file write (temp + fsync +
// rename, so a manifest either exists whole or not at all — the launcher's
// failure report is written while workers are dying, exactly when a torn
// half-document would mislead).
#pragma once

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tinge::obs {

/// {"name": ..., "seconds": ..., "children": [...]} recursively. Children
/// are serialized in execution order.
Json span_to_json(const SpanNode& node);

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// min, max, p50, p90, p95, p99}}} with keys in lexicographic order.
Json metrics_to_json(const MetricsSnapshot& snapshot);

/// Writes `document.dump()` to `path` atomically (temp file + fsync +
/// rename); throws std::runtime_error on I/O failure. Readers never see a
/// partial document.
void write_json_file(const Json& document, const std::string& path);

/// Reads and parses a JSON file; throws std::runtime_error / JsonError.
Json read_json_file(const std::string& path);

}  // namespace tinge::obs
