#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace tinge::obs {

void Histogram::record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  min_ = count_ == 0 ? value : std::min(min_, value);
  max_ = count_ == 0 ? value : std::max(max_, value);
  ++count_;
  sum_ += value;
  if (samples_.size() < kReservoirCapacity) {
    samples_.push_back(value);
    return;
  }
  // Vitter's algorithm R: keep each of the count_ values with equal
  // probability capacity/count_. The LCG is seeded by a constant, so a
  // given record() sequence always retains the same subsample.
  rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const std::uint64_t slot = (rng_state_ >> 11) % count_;
  if (slot < samples_.size()) samples_[static_cast<std::size_t>(slot)] = value;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

namespace {

double nearest_rank(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(index),
                   sorted.end());
  return sorted[index];
}

}  // namespace

double Histogram::quantile(double q) const {
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = samples_;
  }
  return nearest_rank(copy, q);
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = samples_;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
  }
  if (!copy.empty()) {
    s.p50 = nearest_rank(copy, 0.50);
    s.p90 = nearest_rank(copy, 0.90);
    s.p95 = nearest_rank(copy, 0.95);
    s.p99 = nearest_rank(copy, 0.99);
  }
  return s;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto prior = before.counters.find(name);
    const std::uint64_t base = prior != before.counters.end() ? prior->second : 0;
    if (value > base) delta.counters[name] = value - base;
  }
  delta.gauges = after.gauges;
  delta.histograms = after.histograms;
  return delta;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Enumerate under the registry lock, read outside it. Instrument
  // references are valid for the registry's lifetime, counter/gauge reads
  // are atomic, and Histogram::summary() takes the histogram's own mutex —
  // so a live snapshot (the serve path takes one per progress request)
  // never holds the registry lock across O(reservoir) summarization work,
  // and never stalls a writer calling get-or-create concurrently.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
      counters.emplace_back(name, counter.get());
    gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_)
      gauges.emplace_back(name, gauge.get());
    histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_)
      histograms.emplace_back(name, histogram.get());
  }
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters)
    snap.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges) snap.gauges[name] = gauge->value();
  for (const auto& [name, histogram] : histograms)
    snap.histograms[name] = histogram->summary();
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace tinge::obs
