#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace tinge::obs {

void Histogram::record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(value);
  sum_ += value;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

namespace {

double nearest_rank(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(index),
                   sorted.end());
  return sorted[index];
}

}  // namespace

double Histogram::quantile(double q) const {
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = samples_;
  }
  return nearest_rank(copy, q);
}

HistogramSummary Histogram::summary() const {
  std::vector<double> copy;
  double total = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = samples_;
    total = sum_;
  }
  HistogramSummary s;
  s.count = copy.size();
  s.sum = total;
  if (!copy.empty()) {
    const auto [lo, hi] = std::minmax_element(copy.begin(), copy.end());
    s.min = *lo;
    s.max = *hi;
    s.p50 = nearest_rank(copy, 0.50);
    s.p90 = nearest_rank(copy, 0.90);
    s.p99 = nearest_rank(copy, 0.99);
  }
  return s;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto prior = before.counters.find(name);
    const std::uint64_t base = prior != before.counters.end() ? prior->second : 0;
    if (value > base) delta.counters[name] = value - base;
  }
  delta.gauges = after.gauges;
  delta.histograms = after.histograms;
  return delta;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_)
    snap.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) snap.gauges[name] = gauge->value();
  for (const auto& [name, histogram] : histograms_)
    snap.histograms[name] = histogram->summary();
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace tinge::obs
