#include "obs/manifest.h"

#include <unistd.h>

#include <cstdio>
#include <stdexcept>

namespace tinge::obs {

Json span_to_json(const SpanNode& node) {
  Json span = Json::object();
  span["name"] = node.name;
  span["seconds"] = node.seconds;
  Json children = Json::array();
  for (const auto& child : node.children)
    children.push_back(span_to_json(*child));
  span["children"] = std::move(children);
  return span;
}

Json metrics_to_json(const MetricsSnapshot& snapshot) {
  Json out = Json::object();
  Json counters = Json::object();
  for (const auto& [name, value] : snapshot.counters) counters[name] = value;
  out["counters"] = std::move(counters);
  Json gauges = Json::object();
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  out["gauges"] = std::move(gauges);
  Json histograms = Json::object();
  for (const auto& [name, summary] : snapshot.histograms) {
    Json h = Json::object();
    h["count"] = summary.count;
    h["sum"] = summary.sum;
    h["min"] = summary.min;
    h["max"] = summary.max;
    h["p50"] = summary.p50;
    h["p90"] = summary.p90;
    h["p95"] = summary.p95;
    h["p99"] = summary.p99;
    histograms[name] = std::move(h);
  }
  out["histograms"] = std::move(histograms);
  return out;
}

void write_json_file(const Json& document, const std::string& path) {
  // Whole-or-nothing: write to a temp name, fsync, then rename over the
  // target. A reader polling for the manifest (the CI fault smoke does)
  // must never parse a half-written document.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr)
    throw std::runtime_error("cannot create " + tmp);
  const std::string text = document.dump();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size() &&
      std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

Json read_json_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw std::runtime_error("cannot open " + path);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
    text.append(buffer, got);
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) throw std::runtime_error("cannot read " + path);
  return Json::parse(text);
}

}  // namespace tinge::obs
