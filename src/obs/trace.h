// Scoped tracing: per-run stage tree.
//
// A Trace owns a tree of SpanNodes rooted at "run"; TraceSpan is the RAII
// handle that opens a child of the innermost open span and records its wall
// time on destruction. The pipeline wraps each stage (preprocess -> null ->
// mi_sweep -> threshold -> dpi -> output) in a span, producing the stage
// tree the run manifest serializes and bench_pipeline_breakdown prints —
// one timing substrate instead of per-harness private stopwatches.
//
// Spans are opened and closed on the trace's owning thread (pipeline stages
// are sequential on the caller; worker-thread work is accounted through
// obs/metrics.h counters, not spans), so the tree needs no locking.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.h"

namespace tinge::obs {

struct SpanNode {
  std::string name;
  double seconds = 0.0;
  std::vector<std::unique_ptr<SpanNode>> children;
};

class Trace {
 public:
  Trace();

  const SpanNode& root() const { return *root_; }

  /// Updates the root span's seconds to the wall time since construction.
  /// Idempotent: callers that keep adding spans (the CLI's output stage)
  /// call it again before serializing.
  void finish() { root_->seconds = watch_.seconds(); }

 private:
  friend class TraceSpan;

  std::unique_ptr<SpanNode> root_;
  std::vector<SpanNode*> open_;  ///< innermost open span is back()
  Stopwatch watch_;
};

/// RAII span: child of the innermost open span of `trace`.
class TraceSpan {
 public:
  TraceSpan(Trace& trace, std::string name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Wall seconds since the span opened (it is still running).
  double seconds() const { return watch_.seconds(); }

 private:
  Trace& trace_;
  SpanNode* node_;
  Stopwatch watch_;
};

/// Depth-first search for the first span named `name`; nullptr when absent.
const SpanNode* find_span(const SpanNode& root, std::string_view name);

/// Seconds of the first span named `name`, or 0.0 when absent.
double span_seconds(const SpanNode& root, std::string_view name);

/// Indented human-readable tree: name, seconds, share of the parent span.
/// The `--trace` stderr summary and the bench tables print this.
std::string format_trace(const SpanNode& root);

}  // namespace tinge::obs
